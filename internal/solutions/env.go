// Package solutions implements the five data paths the paper compares
// (Table I): Naive, Vanilla Hadoop, PortHadoop, SciHadoop, and SciDP —
// each as a pipeline over the same two-cluster testbed. The workload is
// the NU-WRF analysis/visualization of Section IV: plot one image per
// level per timestamp of a selected variable, optionally followed by SQL
// analysis (highlight / top-1%), with outputs written to HDFS.
//
// Timing conventions follow the paper's evaluation:
//
//   - Conversion time (netCDF -> CSV text) is measured but EXCLUDED from
//     totals ("we do not count the conversion time into the total time in
//     any tests of this paper").
//   - Data copy is measured separately and included in the total, since
//     Naive/Vanilla/SciHadoop cannot overlap it with processing.
//   - Processing runs on the Hadoop cluster (or one node, for Naive).
package solutions

import (
	"fmt"

	"scidp/internal/chaos"
	"scidp/internal/cluster"
	"scidp/internal/core"
	"scidp/internal/hdfs"
	"scidp/internal/ioengine"
	"scidp/internal/mapreduce"
	"scidp/internal/obs"
	"scidp/internal/pfs"
	"scidp/internal/scifmt"
	"scidp/internal/sim"
	"scidp/internal/workloads"
)

// CostModel holds the modeled CPU constants, expressed at PAPER scale
// (logical bytes / paper levels). Env applies the byte and level scale
// factors when charging.
type CostModel struct {
	// TaskStartup is the per-task container/JVM launch cost, seconds.
	TaskStartup float64
	// PlotPerLevel is the parallel image-plotting cost per (paper) level.
	PlotPerLevel float64
	// PlotPerLevelSeq is the Naive solution's per-level plot cost —
	// slightly lower, "without resource contention in memory and disk
	// bandwidth" (Section V-D).
	PlotPerLevelSeq float64
	// TextParsePerMB is read.table's cost per logical MB of CSV text —
	// the Convert bar that dominates Figure 7 for text-based solutions.
	TextParsePerMB float64
	// TextFormatPerMB is the netCDF-to-CSV conversion cost per logical
	// MB of produced text.
	TextFormatPerMB float64
	// TextIndexPerMB is PortHadoop's extra per-MB cost over raw text:
	// the scan-based indexing / boundary re-alignment pass a flat block
	// mapping needs because the converted text lost the netCDF metadata
	// ("PortHadoop addresses this issue by reading extra data across the
	// boundaries ... or by a scan-based indexing to align data records",
	// Section III-B).
	TextIndexPerMB float64
	// BinConvertPerMB is binary-to-R-structure conversion per logical
	// raw MB ("can be converted to R structure in a very short time").
	BinConvertPerMB float64
	// DecompressPerMB is DEFLATE inflation per logical raw MB.
	DecompressPerMB float64
	// AnalysisPerMB is SQL/statistical analysis per logical raw MB.
	AnalysisPerMB float64
}

// DefaultCostModel returns constants calibrated against the paper's
// Figure 7 (read ~2 s/task, Convert dominating text paths at ~3.5 s per
// level of text, Plot ~0.55 s/level, SciDP reading a 50-level variable in
// 1.75 s).
func DefaultCostModel() CostModel {
	return CostModel{
		TaskStartup:     1.0,
		PlotPerLevel:    0.55,
		PlotPerLevelSeq: 0.45,
		TextParsePerMB:  0.06,
		TextFormatPerMB: 0.04,
		TextIndexPerMB:  0.055,
		BinConvertPerMB: 0.002,
		DecompressPerMB: 0.004,
		AnalysisPerMB:   0.002,
	}
}

// EnvConfig sizes the testbed.
type EnvConfig struct {
	// Nodes is the Hadoop node count (the paper defaults to 8).
	Nodes int
	// SlotsPerNode is the task-slot count (the paper runs 8).
	SlotsPerNode int
	// ByteScale divides every bandwidth: one actual byte in this run
	// stands for ByteScale logical bytes at paper scale.
	ByteScale float64
	// LevelScale is paper-levels per generated level (50 / spec.Levels).
	LevelScale float64
	// PlotRes is the real render resolution used for output PNGs.
	PlotRes int
	// Cost is the CPU cost model at paper scale.
	Cost CostModel
	// Obs, when non-nil, attaches the observability registry to the
	// testbed: the kernel's clock and span tracer, the PFS and HDFS
	// metric producers, and an unbounded flow tracer for resource
	// timelines. Runs stay metric-free (and pay no overhead beyond a nil
	// check) when it is nil.
	Obs *obs.Registry
	// Chaos, when non-nil, is the fault plan armed against this testbed:
	// its scheduled rules become kernel events and its injector becomes
	// every job's TaskFaults source.
	Chaos *chaos.Plan
	// Replication overrides the HDFS replica count (0 keeps the default
	// of 1; raise it so DataNode crashes leave survivors to fail over
	// to).
	Replication int
	// MaxAttempts bounds task attempts for every job run in this env
	// (0 keeps the engine default of 1 — no retry).
	MaxAttempts int
	// Speculation is the map-task backup policy for every job in this
	// env (zero disables).
	Speculation mapreduce.Speculation
	// ReadRetry is the PFS Reader recovery policy handed to SciDP input
	// formats (zero = fail fast).
	ReadRetry core.RetryPolicy
	// CacheTier, when enabled (NodeBytes > 0), provisions each Hadoop
	// node with a burst buffer and builds the cluster-wide cooperative
	// cache every PFS and HDFS read in this env consults.
	CacheTier ioengine.TierConfig
	// Workers sizes the data-plane compute pool attached to the kernel:
	// 0 leaves the data plane off (all byte work runs inline on the
	// kernel thread, the pre-two-plane behavior), N > 0 attaches a pool
	// of N OS workers, and N < 0 attaches an inline pool — the
	// scheduling shape of a pool without real concurrency, the
	// determinism reference the pooled modes are compared against.
	// Call Env.Close when done with a pooled env.
	Workers int
	// FairShare selects the kernel's fair-share recomputation strategy:
	// the default incremental path, or the brute-force full-recompute
	// oracle (byte-identical results; used by scheduler-equivalence
	// tests and benchmarks).
	FairShare sim.FairShareMode
}

// DefaultEnvConfig mirrors the paper's 8-node testbed at the given scale
// factors.
func DefaultEnvConfig(byteScale, levelScale float64) EnvConfig {
	return EnvConfig{
		Nodes:        8,
		SlotsPerNode: 8,
		ByteScale:    byteScale,
		LevelScale:   levelScale,
		PlotRes:      32,
		Cost:         DefaultCostModel(),
	}
}

// Env is one freshly built two-cluster testbed.
type Env struct {
	// K is the simulation kernel.
	K *sim.Kernel
	// BD is the Hadoop cluster.
	BD *cluster.Cluster
	// PFS is the parallel file system (Lustre stand-in).
	PFS *pfs.FS
	// HDFS runs over the BD cluster.
	HDFS *hdfs.FS
	// IL is the cross-cluster link.
	IL *cluster.Interlink
	// Registry holds the scientific formats.
	Registry *scifmt.Registry
	// Cfg is the building configuration.
	Cfg EnvConfig
	// Obs is the attached observability registry (nil when detached).
	Obs *obs.Registry
	// Tracer is the kernel flow tracer, attached only when Obs is —
	// feed it to Tracer.ExportResourceMetrics after K.Run for the
	// per-resource utilization series.
	Tracer *sim.Tracer
	// Chaos is the armed fault injector (nil when no plan was given).
	// It doubles as every job's TaskFaults source via Faults().
	Chaos *chaos.Injector
	// Tier is the cooperative cache tier over the BD nodes' burst
	// buffers (nil when Cfg.CacheTier is disabled). Shared by every job
	// and tenant of this env.
	Tier *ioengine.Tier

	// pool is the data-plane worker pool (nil when Workers == 0).
	pool *sim.ComputePool
	// closed records Close: run entry points refuse a closed env.
	closed bool
}

// Close releases resources the env owns — today the data-plane worker
// pool, when one was attached — and marks the env closed: any later
// Run* call panics instead of silently simulating on released
// resources. Safe to call on any env, once or more.
func (e *Env) Close() {
	e.closed = true
	if e.pool != nil {
		e.pool.Close()
	}
}

// Closed reports whether Close has been called. An env stays reusable
// for any number of sequential runs until then.
func (e *Env) Closed() bool { return e.closed }

// ensureOpen is the loud-failure guard at every run entry point. A
// closed env may have a drained worker pool; starting a pipeline on it
// would either deadlock or panic deep inside the data plane, so fail
// at the boundary with a message that names the actual mistake.
func (e *Env) ensureOpen() {
	if e.closed {
		panic("solutions: run on closed Env (Close was already called)")
	}
}

// Faults returns the env's TaskFaults source for MapReduce jobs — the
// chaos injector when a plan is armed, nil otherwise. (A nil *Injector
// would satisfy the interface but still be inert; returning a typed nil
// into an interface field is avoided for clarity.)
func (e *Env) Faults() mapreduce.TaskFaults {
	if e.Chaos == nil {
		return nil
	}
	return e.Chaos
}

// NewEnv builds the testbed: an 8-node (by default) Hadoop cluster with
// HDFS, the Lustre-like PFS (2 OSS x 12 OST), and a 2x10GbE interlink,
// all bandwidths divided by ByteScale.
func NewEnv(cfg EnvConfig) *Env {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 8
	}
	if cfg.SlotsPerNode <= 0 {
		cfg.SlotsPerNode = 8
	}
	if cfg.ByteScale <= 0 {
		cfg.ByteScale = 1
	}
	if cfg.LevelScale <= 0 {
		cfg.LevelScale = 1
	}
	if cfg.PlotRes <= 0 {
		cfg.PlotRes = 64
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	k := sim.NewKernel()
	k.SetFairShareMode(cfg.FairShare)
	bdCfg := cluster.DefaultHardware(cfg.Nodes, cfg.SlotsPerNode).Scaled(cfg.ByteScale)
	bdCfg.BurstBufferBytes = cfg.CacheTier.NodeBytes
	bd := cluster.New(k, "bd", bdCfg)
	pcfg := pfs.DefaultConfig().Scaled(cfg.ByteScale)
	pfsFS := pfs.New(k, pcfg)
	hcfg := hdfs.DefaultConfig()
	hcfg.BlockSize = int64(float64(hcfg.BlockSize) / cfg.ByteScale)
	if hcfg.BlockSize < 1024 {
		hcfg.BlockSize = 1024
	}
	if cfg.Replication > 0 {
		hcfg.Replication = cfg.Replication
	}
	hfs := hdfs.New(k, bd, hcfg)
	il := cluster.NewInterlink(2*1.25e9/cfg.ByteScale, 0.0002)
	env := &Env{
		K:        k,
		BD:       bd,
		PFS:      pfsFS,
		HDFS:     hfs,
		IL:       il,
		Registry: scifmt.Default(),
		Cfg:      cfg,
	}
	if cfg.CacheTier.Enabled() {
		env.Tier = ioengine.NewTier(cfg.CacheTier, bd, pfsFS.MeanQueueDepth)
		for _, n := range bd.Nodes {
			env.Tier.Register(n.Name, n.BurstBufferBytes)
		}
	}
	if cfg.Obs != nil {
		env.Obs = cfg.Obs
		k.SetObs(cfg.Obs)
		pfsFS.SetObs(cfg.Obs)
		hfs.SetObs(cfg.Obs)
		env.Tier.RegisterObs(cfg.Obs)
		env.Tracer = &sim.Tracer{}
		k.SetTracer(env.Tracer)
	}
	if cfg.Chaos != nil {
		env.Chaos = chaos.New(cfg.Chaos)
		env.Chaos.Arm(k, pfsFS, hfs, cfg.Obs)
	}
	if cfg.Workers != 0 {
		w := cfg.Workers
		if w < 0 {
			w = 0
		}
		env.pool = sim.NewComputePool(w)
		k.SetComputePool(env.pool)
	}
	return env
}

// ExportSimMetrics derives the per-resource utilization series from the
// flow tracer into the attached registry. Call it after K.Run; no-op
// when the env was built without observability.
func (e *Env) ExportSimMetrics() {
	if e.Tracer != nil {
		e.Tracer.ExportResourceMetrics(e.Obs)
	}
}

// Mount returns a Hadoop node's PFS client: transfers cross the
// interlink and the node's NIC.
func (e *Env) Mount(n *cluster.Node) *pfs.Client {
	return e.PFS.NewClient(e.IL.Link, n.NIC)
}

// scaleMB converts actual bytes to logical MB for cost charging.
func (e *Env) scaleMB(actualBytes int) float64 {
	return float64(actualBytes) * e.Cfg.ByteScale / 1e6
}

// plotCharge is the modeled seconds to plot one generated level.
func (e *Env) plotCharge(sequential bool) float64 {
	per := e.Cfg.Cost.PlotPerLevel
	if sequential {
		per = e.Cfg.Cost.PlotPerLevelSeq
	}
	return per * e.Cfg.LevelScale
}

// AnalysisKind selects the Anlys workload's analysis (Figure 9).
type AnalysisKind int

// Figure 9's three cases.
const (
	// AnalysisNone is the Img-only baseline.
	AnalysisNone AnalysisKind = iota
	// AnalysisHighlight marks the top 10 data points on the images.
	AnalysisHighlight
	// AnalysisTop1Pct selects the top 1% of cells and stores them.
	AnalysisTop1Pct
)

// String names the analysis case as in Figure 9.
func (a AnalysisKind) String() string {
	switch a {
	case AnalysisNone:
		return "no analysis"
	case AnalysisHighlight:
		return "highlight"
	case AnalysisTop1Pct:
		return "top 1%"
	}
	return "unknown"
}

// Workload is one experiment's input.
type Workload struct {
	// Dataset is the generated NU-WRF run, already on the PFS.
	Dataset *workloads.Dataset
	// Var is the analyzed variable ("QR").
	Var string
	// Analysis selects the Anlys case (AnalysisNone = Img-only).
	Analysis AnalysisKind
}

// Report is one solution run's outcome.
type Report struct {
	// Solution names the data path.
	Solution string
	// ConvertSeconds is the text-conversion phase (excluded from Total).
	ConvertSeconds float64
	// CopySeconds is the PFS-to-HDFS copy phase.
	CopySeconds float64
	// ProcessSeconds is the Hadoop (or sequential) processing phase.
	ProcessSeconds float64
	// TotalSeconds is Copy + Process, the paper's Figure 5 metric.
	TotalSeconds float64
	// PhaseMeans are per-task mean seconds by phase name (Read, Convert,
	// Plot — Figure 7).
	PhaseMeans map[string]float64
	// LevelsPerTask converts task phases to per-level values.
	LevelsPerTask float64
	// Images is the number of PNGs produced.
	Images int
	// Animations is the number of animated GIFs assembled (Anlys only).
	Animations int
	// TextBytes is the converted text size (0 for conversion-free paths).
	TextBytes int64
	// CopiedBytes is the data moved into HDFS during the copy phase.
	CopiedBytes int64
	// AnalysisBytes is the analysis output written to HDFS.
	AnalysisBytes int64
}

// PerLevel returns a phase's mean seconds per PAPER level (Figure 7's
// unit), given the level scale used at generation.
func (r *Report) PerLevel(phase string, levelScale float64) float64 {
	if r.LevelsPerTask <= 0 {
		return 0
	}
	return r.PhaseMeans[phase] / (r.LevelsPerTask * levelScale)
}

// Summary formats the headline numbers.
func (r *Report) Summary() string {
	return fmt.Sprintf("%-14s copy=%8.1fs process=%8.1fs total=%8.1fs (convert=%8.1fs excluded)",
		r.Solution, r.CopySeconds, r.ProcessSeconds, r.TotalSeconds, r.ConvertSeconds)
}

package solutions

import (
	"fmt"
	"strings"
	"testing"

	"scidp/internal/sim"
	"scidp/internal/workloads"
)

// reuseSetup builds a small env with the dataset installed on the PFS,
// ready for SciDP runs.
func reuseSetup(t *testing.T, workers int) (*Env, *Workload) {
	t.Helper()
	spec := workloads.NUWRFSpec{
		Timestamps: 2, Levels: 4, Lat: 16, Lon: 16, Vars: 2, Dir: "/nuwrf",
	}
	blobs, ds, err := workloads.GenerateBlobs(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultEnvConfig(1000, 1)
	cfg.Nodes = 2
	cfg.SlotsPerNode = 2
	cfg.PlotRes = 16
	cfg.Workers = workers
	env := NewEnv(cfg)
	workloads.Install(env.PFS, blobs)
	return env, &Workload{Dataset: ds, Var: "QR", Analysis: AnalysisNone}
}

// TestEnvSequentialRuns is the reuse contract: one env must support any
// number of sequential pipeline runs (each under a distinct Name so the
// Data Mapper's virtual inodes do not collide), with no state leaking
// from one run into the next — the second run must produce the same
// result volume as the first.
func TestEnvSequentialRuns(t *testing.T) {
	env, wl := reuseSetup(t, 2)
	defer env.Close()
	reps := make([]*Report, 2)
	for i := range reps {
		var runErr error
		name := fmt.Sprintf("scidp-run%d", i)
		env.K.Go(name, func(p *sim.Proc) {
			reps[i], runErr = RunSciDPWith(p, env, wl, SciDPOptions{Name: name})
		})
		env.K.Run()
		if runErr != nil {
			t.Fatalf("run %d: %v", i, runErr)
		}
		if reps[i].TotalSeconds <= 0 || reps[i].Images <= 0 {
			t.Fatalf("run %d produced nothing: %+v", i, reps[i])
		}
	}
	if reps[0].Images != reps[1].Images {
		t.Errorf("second run leaked state: images %d vs %d",
			reps[0].Images, reps[1].Images)
	}
	// The second run starts at a later absolute virtual time, so the
	// elapsed-time subtraction rounds differently in the last ulp —
	// compare with a nanosecond tolerance, not bit equality.
	if d := reps[0].ProcessSeconds - reps[1].ProcessSeconds; d > 1e-9 || d < -1e-9 {
		t.Errorf("second run leaked state: process time %.9fs vs %.9fs",
			reps[0].ProcessSeconds, reps[1].ProcessSeconds)
	}
}

// TestRunAfterCloseFailsLoudly: a run attempted on a closed env must
// panic at the entry point with a message naming the mistake, not
// deadlock or die deep inside the data plane.
func TestRunAfterCloseFailsLoudly(t *testing.T) {
	env, wl := reuseSetup(t, 2)
	env.Close()
	panicked := false
	env.K.Go("driver", func(p *sim.Proc) {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("RunSciDP on closed env did not panic")
				return
			}
			if !strings.Contains(fmt.Sprint(r), "closed Env") {
				t.Errorf("panic message does not name the closed env: %v", r)
			}
			panicked = true
		}()
		_, _ = RunSciDP(p, env, wl)
	})
	env.K.Run()
	if !panicked {
		t.Fatal("driver never ran")
	}
	if !env.Closed() {
		t.Fatal("Closed() lies")
	}
}

// TestCloseIdempotent: Close twice is fine, and Closed flips exactly
// once.
func TestCloseIdempotent(t *testing.T) {
	env, _ := reuseSetup(t, 1)
	if env.Closed() {
		t.Fatal("fresh env reports closed")
	}
	env.Close()
	env.Close()
	if !env.Closed() {
		t.Fatal("closed env reports open")
	}
}

package solutions

import (
	"fmt"

	"scidp/internal/cluster"
	"scidp/internal/core"
	"scidp/internal/hdfs"
	"scidp/internal/sim"
	"scidp/internal/workloads"
)

// WorkflowReport times the paper's end-to-end workflow: HPC simulation
// producing files on the PFS, then analysis/visualization of every file.
type WorkflowReport struct {
	// Strategy names the workflow variant.
	Strategy string
	// SimulationSeconds is when the last output file landed on the PFS.
	SimulationSeconds float64
	// EndToEndSeconds is simulation start to last image stored.
	EndToEndSeconds float64
	// AnalysisLagSeconds is EndToEnd - Simulation: how long after the
	// simulation finished the analysis kept running.
	AnalysisLagSeconds float64
	// Images is the number of PNGs produced.
	Images int
}

// WorkflowConfig drives RunWorkflow.
type WorkflowConfig struct {
	// Blobs and Files describe the run the simulation will write.
	Blobs map[string][]byte
	// Dataset describes the run (for grid dimensions).
	Dataset *workloads.Dataset
	// Var is the analyzed variable.
	Var string
	// ComputeSecondsPerStep is the simulation compute time per output.
	ComputeSecondsPerStep float64
	// HPCNodes is the simulation cluster size.
	HPCNodes int
	// InSitu analyzes each file the moment it lands; false waits for the
	// whole run, then executes the standard SciDP pipeline.
	InSitu bool
}

// RunWorkflow plays the full simulate-then-analyze workflow on env and
// reports end-to-end timing. With InSitu, SciDP maps and processes each
// output immediately after the simulation writes it — the paper's "launch
// data analysis on a Hadoop computing environment immediately after data
// is generated"; otherwise analysis starts only after the run completes
// (the conventional offline workflow).
func RunWorkflow(p *sim.Proc, env *Env, cfg WorkflowConfig) (*WorkflowReport, error) {
	env.ensureOpen()
	rep := &WorkflowReport{Strategy: "offline"}
	if cfg.InSitu {
		rep.Strategy = "in-situ"
	}
	if cfg.HPCNodes <= 0 {
		cfg.HPCNodes = 8
	}
	hpc := cluster.New(env.K, "hpc", cluster.DefaultHardware(cfg.HPCNodes, 1).Scaled(env.Cfg.ByteScale))
	comm := workloads.NewComm(env.K, hpc, env.PFS)

	start := p.Now()
	mapper := core.NewMapper(env.HDFS, env.Registry, "/scidp")
	wl := &Workload{Dataset: cfg.Dataset, Var: cfg.Var}

	var analysisWG *sim.WaitGroup
	images := 0
	var firstErr error
	if cfg.InSitu {
		analysisWG = env.K.NewWaitGroup()
	}

	sim_ := workloads.SimSpec{
		Comm:           comm,
		FS:             env.PFS,
		Blobs:          cfg.Blobs,
		Files:          cfg.Dataset.Files,
		ComputeSeconds: cfg.ComputeSecondsPerStep,
	}
	if cfg.InSitu {
		sim_.OnFile = func(dp *sim.Proc, file string, index int) {
			// Map the fresh file and process each of its dummy blocks as
			// its own task on the Hadoop cluster, concurrently with the
			// still-running simulation.
			mf, err := mapper.MapFile(dp, env.Mount(env.BD.Node(0)), file, core.MapOptions{
				Vars:         []string{cfg.Var},
				RowsPerBlock: cfg.Dataset.Spec.Levels,
			})
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			for vi := range mf.Vars {
				for bi, block := range mf.Vars[vi].INode.Blocks {
					block := block
					node := env.BD.Node((index + bi) % len(env.BD.Nodes))
					analysisWG.Add(1)
					env.K.Go(fmt.Sprintf("insitu/%s#%d", file, bi), func(tp *sim.Proc) {
						defer analysisWG.Done()
						n, err := processBlockInline(tp, env, wl, node, block)
						if err != nil && firstErr == nil {
							firstErr = err
						}
						images += n
					})
				}
			}
		}
	}
	if err := workloads.SimulateRun(p, sim_); err != nil {
		return nil, err
	}
	rep.SimulationSeconds = p.Now() - start

	if cfg.InSitu {
		p.Wait(analysisWG)
		if firstErr != nil {
			return nil, firstErr
		}
		rep.Images = images
	} else {
		srep, err := RunSciDP(p, env, wl)
		if err != nil {
			return nil, err
		}
		rep.Images = srep.Images
	}
	rep.EndToEndSeconds = p.Now() - start
	rep.AnalysisLagSeconds = rep.EndToEndSeconds - rep.SimulationSeconds
	return rep, nil
}

// processBlockInline runs one dummy block's analysis as a standalone
// task on the given node: acquire a slot, pay task startup, resolve the
// block via the PFS Reader, plot every level, store the images on HDFS —
// the map-task body without a surrounding job.
func processBlockInline(tp *sim.Proc, env *Env, wl *Workload, node *cluster.Node, block *hdfs.Block) (int, error) {
	tp.Acquire(node.Slots)
	defer node.Slots.Release()
	tp.Sleep(env.Cfg.Cost.TaskStartup)
	sc := newSerialCtx(tp, node)
	reader := core.NewPFSReader(env.Registry, env.Mount(node))
	var value any
	var err error
	sc.Phase("Read", func() {
		value, err = reader.ReadBlock(tp, block)
	})
	if err != nil {
		return 0, err
	}
	slab, ok := value.(*core.Slab)
	if !ok {
		return 0, fmt.Errorf("solutions: in-situ block is not scientific")
	}
	rawMB := env.scaleMB(len(slab.Raw))
	sc.Charge("Read", env.Cfg.Cost.DecompressPerMB*rawMB)
	sc.Charge("Convert", env.Cfg.Cost.BinConvertPerMB*rawMB)
	vals, err := slab.Float32s()
	if err != nil {
		return 0, err
	}
	g := &grid{
		t:           workloads.TimestampIndex(slab.PFSPath),
		levelOrigin: slab.Start[0],
		levels:      slab.Count[0], ny: slab.Count[1], nx: slab.Count[2],
		vals: vals,
	}
	out, err := processGrid(env, wl, sc, g, false)
	if err != nil {
		return 0, err
	}
	for i, png := range out.images {
		dst := fmt.Sprintf("/results/insitu/img/t%04d_l%03d.png", g.t, out.levels[i])
		if err := env.HDFS.WriteFile(tp, node, dst, png); err != nil {
			return 0, err
		}
	}
	return len(out.images), nil
}

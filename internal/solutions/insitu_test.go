package solutions

import (
	"testing"

	"scidp/internal/sim"
	"scidp/internal/workloads"
)

// workflowSetup generates blobs but does NOT install them: the simulation
// phase writes them.
func workflowSetup(t *testing.T, timestamps int) (map[string][]byte, *workloads.Dataset) {
	t.Helper()
	spec := workloads.NUWRFSpec{
		Timestamps: timestamps, Levels: 4, Lat: 16, Lon: 16, Vars: 4, Dir: "/nuwrf",
	}
	blobs, ds, err := workloads.GenerateBlobs(spec)
	if err != nil {
		t.Fatal(err)
	}
	return blobs, ds
}

func runWorkflow(t *testing.T, timestamps int, inSitu bool, compute float64) *WorkflowReport {
	t.Helper()
	blobs, ds := workflowSetup(t, timestamps)
	cfg := DefaultEnvConfig(1000, 50.0/4)
	cfg.Nodes = 4
	cfg.SlotsPerNode = 2
	cfg.PlotRes = 16
	env := NewEnv(cfg)
	var rep *WorkflowReport
	var err error
	env.K.Go("driver", func(p *sim.Proc) {
		rep, err = RunWorkflow(p, env, WorkflowConfig{
			Blobs: blobs, Dataset: ds, Var: "QR",
			ComputeSecondsPerStep: compute, HPCNodes: 4, InSitu: inSitu,
		})
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestWorkflowSimulationWritesFiles(t *testing.T) {
	blobs, ds := workflowSetup(t, 3)
	env := NewEnv(DefaultEnvConfig(1000, 1))
	var err error
	env.K.Go("driver", func(p *sim.Proc) {
		comm := workloads.NewComm(env.K, env.BD, env.PFS)
		err = workloads.SimulateRun(p, workloads.SimSpec{
			Comm: comm, FS: env.PFS, Blobs: blobs, Files: ds.Files, ComputeSeconds: 1,
		})
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range ds.Files {
		got := env.PFS.Get(f)
		if string(got) != string(blobs[f]) {
			t.Fatalf("simulation output %s does not match blob", f)
		}
	}
	if env.K.Now() < 3 {
		t.Fatalf("simulation took %v, want >= 3 (compute phases)", env.K.Now())
	}
}

func TestWorkflowBothStrategiesProduceAllImages(t *testing.T) {
	offline := runWorkflow(t, 4, false, 5)
	insitu := runWorkflow(t, 4, true, 5)
	want := 4 * 4 // timestamps x levels
	if offline.Images != want || insitu.Images != want {
		t.Fatalf("images: offline=%d insitu=%d want %d", offline.Images, insitu.Images, want)
	}
	if offline.Strategy != "offline" || insitu.Strategy != "in-situ" {
		t.Fatalf("strategies: %s / %s", offline.Strategy, insitu.Strategy)
	}
}

func TestInSituHidesAnalysisBehindSimulation(t *testing.T) {
	// With generous compute time between outputs, in-situ analysis
	// overlaps the simulation: its end-to-end time should be much closer
	// to the bare simulation time than the offline pipeline's.
	offline := runWorkflow(t, 6, false, 60)
	insitu := runWorkflow(t, 6, true, 60)
	if insitu.EndToEndSeconds >= offline.EndToEndSeconds {
		t.Fatalf("in-situ (%v) should beat offline (%v)", insitu.EndToEndSeconds, offline.EndToEndSeconds)
	}
	if insitu.AnalysisLagSeconds >= offline.AnalysisLagSeconds {
		t.Fatalf("in-situ lag (%v) should be below offline lag (%v)",
			insitu.AnalysisLagSeconds, offline.AnalysisLagSeconds)
	}
	// Simulation time itself is strategy-independent (modulo PFS
	// contention from concurrent readers).
	if insitu.SimulationSeconds < offline.SimulationSeconds {
		t.Fatalf("in-situ simulation (%v) should not be faster than offline's (%v)",
			insitu.SimulationSeconds, offline.SimulationSeconds)
	}
}

func TestWorkflowMissingBlobFails(t *testing.T) {
	env := NewEnv(DefaultEnvConfig(1000, 1))
	var err error
	env.K.Go("driver", func(p *sim.Proc) {
		comm := workloads.NewComm(env.K, env.BD, env.PFS)
		err = workloads.SimulateRun(p, workloads.SimSpec{
			Comm: comm, FS: env.PFS, Blobs: map[string][]byte{}, Files: []string{"/ghost.nc"},
		})
	})
	env.K.Run()
	if err == nil {
		t.Fatal("missing blob should fail")
	}
}

func TestSimulateRunValidation(t *testing.T) {
	env := NewEnv(DefaultEnvConfig(1000, 1))
	var err error
	env.K.Go("driver", func(p *sim.Proc) {
		err = workloads.SimulateRun(p, workloads.SimSpec{})
	})
	env.K.Run()
	if err == nil {
		t.Fatal("empty spec should fail")
	}
}

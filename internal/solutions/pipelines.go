package solutions

import (
	"fmt"
	"path"

	"scidp/internal/core"
	"scidp/internal/hdfs"
	"scidp/internal/ioengine"
	"scidp/internal/mapreduce"
	"scidp/internal/netcdf"
	"scidp/internal/obs"
	"scidp/internal/sim"
	"scidp/internal/workloads"
)

// hdfsWholeFileInput yields one split per HDFS file and reads the whole
// file (all blocks, locality-preferred) as the record value.
type hdfsWholeFileInput struct {
	env   *Env
	paths []string
}

func (in *hdfsWholeFileInput) Splits(p *sim.Proc) ([]*mapreduce.Split, error) {
	var out []*mapreduce.Split
	for _, pth := range in.paths {
		n, err := in.env.HDFS.Stat(p, pth)
		if err != nil {
			return nil, err
		}
		locs := map[string]bool{}
		var hosts []string
		for _, b := range n.Blocks {
			for _, h := range hdfs.HostsOf(b) {
				if !locs[h] {
					locs[h] = true
					hosts = append(hosts, h)
				}
			}
		}
		out = append(out, &mapreduce.Split{Label: pth, Payload: pth, Length: n.Size(), Locations: hosts})
	}
	return out, nil
}

func (in *hdfsWholeFileInput) ForEach(tc *mapreduce.TaskContext, s *mapreduce.Split, fn func(key string, value any) error) error {
	var data []byte
	var err error
	tc.Phase("Read", func() {
		data, err = in.env.HDFS.ReadFile(tc.Proc(), tc.Node(), s.Payload.(string))
	})
	if err != nil {
		return err
	}
	return fn(s.Label, data)
}

// hdfsRandomReader adapts an HDFS file to the netcdf.ReaderAt interface,
// charging block-range reads on the task's node.
type hdfsRandomReader struct {
	env  *Env
	tc   *mapreduce.TaskContext
	path string
	size int64
}

func (r *hdfsRandomReader) ReadAt(off, n int64) ([]byte, error) {
	return r.env.HDFS.ReadAt(r.tc.Proc(), r.tc.Node(), r.path, off, n)
}

func (r *hdfsRandomReader) Size() int64 { return r.size }

// hdfsNetCDFInput is the SciHadoop-style input: one split per
// HDFS-resident netCDF file; reading a split opens the file in place and
// pulls only the analyzed variable (header + its chunks), not the whole
// file.
type hdfsNetCDFInput struct {
	env     *Env
	paths   []string
	varName string
}

func (in *hdfsNetCDFInput) Splits(p *sim.Proc) ([]*mapreduce.Split, error) {
	whole := &hdfsWholeFileInput{env: in.env, paths: in.paths}
	return whole.Splits(p)
}

func (in *hdfsNetCDFInput) ForEach(tc *mapreduce.TaskContext, s *mapreduce.Split, fn func(key string, value any) error) error {
	path := s.Payload.(string)
	node, err := in.env.HDFS.Stat(tc.Proc(), path)
	if err != nil {
		return err
	}
	var arr *netcdf.Array
	tc.Phase("Read", func() {
		r := &hdfsRandomReader{env: in.env, tc: tc, path: path, size: node.Size()}
		var f *netcdf.File
		f, err = netcdf.Open(r)
		if err != nil {
			return
		}
		arr, err = f.GetVar(in.varName)
	})
	if err != nil {
		return err
	}
	return fn(s.Label, arr)
}

// distcp copies files from the PFS into HDFS with one map task per file
// (Hadoop's parallel copy; what SciHadoop and Vanilla Hadoop must run
// before processing). Returns destination paths and bytes moved.
func distcp(p *sim.Proc, env *Env, files []string, dstDir string) ([]string, int64, error) {
	splits := make([]*mapreduce.Split, len(files))
	dsts := make([]string, len(files))
	for i, f := range files {
		dsts[i] = path.Join(dstDir, path.Base(f))
		splits[i] = &mapreduce.Split{Label: f, Payload: i}
	}
	var moved int64
	job := &mapreduce.Job{
		Name:         "distcp",
		Cluster:      env.BD,
		SlotsPerNode: env.Cfg.SlotsPerNode,
		Obs:          env.Obs,
		TaskStartup:  env.Cfg.Cost.TaskStartup,
		MaxAttempts:  env.Cfg.MaxAttempts,
		Faults:       env.Faults(),
		Input:        staticInput(splits),
		Map: func(tc *mapreduce.TaskContext, key string, value any) error {
			i := value.(int)
			mount := env.Mount(tc.Node())
			size, err := mount.Stat(tc.Proc(), files[i])
			if err != nil {
				return err
			}
			data, err := mount.ReadAt(tc.Proc(), files[i], 0, size)
			if err != nil {
				return err
			}
			moved += int64(len(data))
			return env.HDFS.WriteFile(tc.Proc(), tc.Node(), dsts[i], data)
		},
	}
	if _, err := job.Run(p); err != nil {
		return nil, 0, err
	}
	return dsts, moved, nil
}

// seqCopy copies files one at a time through a single node — the Naive
// path's serial copy.
func seqCopy(p *sim.Proc, env *Env, files []string, dstDir string) ([]string, int64, error) {
	node := env.BD.Node(0)
	mount := env.Mount(node)
	dsts := make([]string, len(files))
	var moved int64
	for i, f := range files {
		dsts[i] = path.Join(dstDir, path.Base(f))
		size, err := mount.Stat(p, f)
		if err != nil {
			return nil, 0, err
		}
		data, err := mount.ReadAt(p, f, 0, size)
		if err != nil {
			return nil, 0, err
		}
		moved += int64(len(data))
		if err := env.HDFS.WriteFile(p, node, dsts[i], data); err != nil {
			return nil, 0, err
		}
	}
	return dsts, moved, nil
}

// staticInput adapts a fixed split list.
type staticInput []*mapreduce.Split

func (s staticInput) Splits(p *sim.Proc) ([]*mapreduce.Split, error) { return s, nil }
func (s staticInput) ForEach(tc *mapreduce.TaskContext, sp *mapreduce.Split, fn func(key string, value any) error) error {
	return fn(sp.Label, sp.Payload)
}

// RunNaive is Table I's first row: sequential conversion, sequential
// copy, sequential processing on one node.
func RunNaive(p *sim.Proc, env *Env, wl *Workload) (*Report, error) {
	env.ensureOpen()
	rep := &Report{Solution: "naive"}
	start := p.Now()
	csvs, textBytes, err := ConvertToCSV(p, env, wl)
	if err != nil {
		return nil, err
	}
	rep.ConvertSeconds = p.Now() - start
	rep.TextBytes = textBytes

	start = p.Now()
	staged, moved, err := seqCopy(p, env, csvs, "/staged-csv")
	if err != nil {
		return nil, err
	}
	rep.CopySeconds = p.Now() - start
	rep.CopiedBytes = moved

	start = p.Now()
	node := env.BD.Node(0)
	sc := newSerialCtx(p, node)
	stats := &procStats{}
	for _, f := range staged {
		var data []byte
		var rerr error
		sc.Phase("Read", func() {
			data, rerr = env.HDFS.ReadFile(p, node, f)
		})
		if rerr != nil {
			return nil, rerr
		}
		g, err := gridFromCSV(env, sc, data, wl.Dataset.Spec)
		if err != nil {
			return nil, err
		}
		out, err := processGrid(env, wl, sc, g, true)
		if err != nil {
			return nil, err
		}
		for i, png := range out.images {
			dst := fmt.Sprintf("/results/naive/img/t%04d_l%03d.png", g.t, out.levels[i])
			if err := env.HDFS.WriteFile(p, node, dst, png); err != nil {
				return nil, err
			}
			stats.images++
		}
		if out.analysis != nil {
			text := out.analysis.WriteCSV()
			stats.analysisBytes += int64(len(text))
			dst := fmt.Sprintf("/results/naive/analysis/t%04d.csv", g.t)
			if err := env.HDFS.WriteFile(p, node, dst, text); err != nil {
				return nil, err
			}
		}
	}
	rep.ProcessSeconds = p.Now() - start
	rep.TotalSeconds = rep.CopySeconds + rep.ProcessSeconds
	rep.PhaseMeans = map[string]float64{}
	for name, total := range sc.phases {
		rep.PhaseMeans[name] = total / float64(len(staged))
	}
	rep.LevelsPerTask = float64(wl.Dataset.Spec.Levels)
	rep.Images = stats.images
	rep.AnalysisBytes = stats.analysisBytes
	return rep, nil
}

// RunVanillaHadoop is Table I's second row: conversion, then parallel
// copy of the text onto HDFS, then parallel processing of the text.
func RunVanillaHadoop(p *sim.Proc, env *Env, wl *Workload) (*Report, error) {
	env.ensureOpen()
	rep := &Report{Solution: "vanilla-hadoop"}
	start := p.Now()
	csvs, textBytes, err := ConvertToCSV(p, env, wl)
	if err != nil {
		return nil, err
	}
	rep.ConvertSeconds = p.Now() - start
	rep.TextBytes = textBytes

	start = p.Now()
	staged, moved, err := distcp(p, env, csvs, "/staged-csv")
	if err != nil {
		return nil, err
	}
	rep.CopySeconds = p.Now() - start
	rep.CopiedBytes = moved

	start = p.Now()
	input := &hdfsWholeFileInput{env: env, paths: staged}
	res, stats, err := runProcessing(p, env, wl, "vanilla", input,
		func(tc *mapreduce.TaskContext, key string, value any) (*grid, error) {
			return gridFromCSV(env, tc, value.([]byte), wl.Dataset.Spec)
		})
	if err != nil {
		return nil, err
	}
	rep.ProcessSeconds = p.Now() - start
	rep.TotalSeconds = rep.CopySeconds + rep.ProcessSeconds
	fillReport(rep, env, res, stats, wl)
	return rep, nil
}

// RunPortHadoop is Table I's third row: conversion is still required, but
// the text is processed in place on the PFS through flat virtual blocks
// (PortHadoop's virtual-block design, which SciDP generalizes).
func RunPortHadoop(p *sim.Proc, env *Env, wl *Workload) (*Report, error) {
	env.ensureOpen()
	rep := &Report{Solution: "porthadoop"}
	start := p.Now()
	_, textBytes, err := ConvertToCSV(p, env, wl)
	if err != nil {
		return nil, err
	}
	rep.ConvertSeconds = p.Now() - start
	rep.TextBytes = textBytes

	start = p.Now()
	mapper := core.NewMapper(env.HDFS, env.Registry, "/porthadoop")
	// One dummy block per text file: the whole file is one task's input.
	mapping, err := mapper.MapPath(p, env.Mount(env.BD.Node(0)), csvDir(wl), core.MapOptions{
		FlatBlockSize: 1 << 40,
	})
	if err != nil {
		return nil, err
	}
	input := &core.InputFormat{
		HDFS: env.HDFS, Dir: mapping.Root, Registry: env.Registry, MountFor: env.Mount,
		Obs: env.Obs, Retry: env.Cfg.ReadRetry,
	}
	res, stats, err := runProcessing(p, env, wl, "porthadoop", input,
		func(tc *mapreduce.TaskContext, key string, value any) (*grid, error) {
			text := value.([]byte)
			// The flat mapping lost the record structure: PortHadoop
			// scans the text to re-align records before parsing.
			tc.Charge("Convert", env.Cfg.Cost.TextIndexPerMB*env.scaleMB(len(text)))
			return gridFromCSV(env, tc, text, wl.Dataset.Spec)
		})
	if err != nil {
		return nil, err
	}
	rep.ProcessSeconds = p.Now() - start
	rep.TotalSeconds = rep.ProcessSeconds
	fillReport(rep, env, res, stats, wl)
	return rep, nil
}

// RunSciHadoop is Table I's fourth row: no conversion (native netCDF
// support), but the whole files — all 23 variables — must be copied onto
// HDFS before processing ("the netCDF file is not dividable in the
// variable level, the whole file has to be moved").
func RunSciHadoop(p *sim.Proc, env *Env, wl *Workload) (*Report, error) {
	env.ensureOpen()
	rep := &Report{Solution: "scihadoop"}
	start := p.Now()
	staged, moved, err := distcp(p, env, wl.Dataset.Files, "/staged-nc")
	if err != nil {
		return nil, err
	}
	rep.CopySeconds = p.Now() - start
	rep.CopiedBytes = moved

	start = p.Now()
	// SciHadoop is netCDF-aware: although it had to copy the whole files,
	// its tasks read only the analyzed variable's chunks out of the
	// HDFS-resident netCDF (block-range reads, locality-preferred).
	input := &hdfsNetCDFInput{env: env, paths: staged, varName: wl.Var}
	res, stats, err := runProcessing(p, env, wl, "scihadoop", input,
		func(tc *mapreduce.TaskContext, key string, value any) (*grid, error) {
			arr := value.(*netcdf.Array)
			rawMB := env.scaleMB(len(arr.Data))
			tc.Charge("Read", env.Cfg.Cost.DecompressPerMB*rawMB)
			tc.Charge("Convert", env.Cfg.Cost.BinConvertPerMB*rawMB)
			return &grid{
				t:      workloads.TimestampIndex(key),
				levels: arr.Shape[0], ny: arr.Shape[1], nx: arr.Shape[2],
				vals: arr.Float32s(),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	rep.ProcessSeconds = p.Now() - start
	rep.TotalSeconds = rep.CopySeconds + rep.ProcessSeconds
	fillReport(rep, env, res, stats, wl)
	return rep, nil
}

// SciDPOptions tunes the SciDP pipeline (ablations).
type SciDPOptions struct {
	// RowsPerBlock overrides dummy-block granularity (0 = one task per
	// variable, the configuration the paper's Figure 7 measures).
	RowsPerBlock int
	// Name namespaces the run's HDFS mirror and results directories
	// (default "scidp"), letting several runs share one environment.
	Name string
	// Engine configures each task's PFS Reader I/O engine (chunk cache
	// budget, readahead depth).
	Engine core.EngineOptions
	// Caches, when non-nil, is the per-node chunk cache set the run uses
	// — pass the same set to a later run to start it warm, or inspect
	// its Stats afterwards.
	Caches *ioengine.CacheSet
}

// RunSciDP is Table I's last row: no conversion, no copy — the Data
// Mapper mirrors the netCDF files as virtual HDFS inodes (selected
// variable only) and every map task's PFS Reader pulls its hyperslab
// straight from the PFS, overlapping with other tasks' plotting.
func RunSciDP(p *sim.Proc, env *Env, wl *Workload) (*Report, error) {
	return RunSciDPWith(p, env, wl, SciDPOptions{})
}

// RunSciDPWith is RunSciDP with explicit tuning.
func RunSciDPWith(p *sim.Proc, env *Env, wl *Workload, opts SciDPOptions) (*Report, error) {
	env.ensureOpen()
	name := opts.Name
	if name == "" {
		name = "scidp"
	}
	if opts.Caches != nil {
		opts.Caches.RegisterObs(env.Obs, obs.L("set", name))
	}
	rep := &Report{Solution: name}
	start := p.Now()
	rows := opts.RowsPerBlock
	if rows == 0 {
		rows = wl.Dataset.Spec.Levels // one task per (file, variable)
	}
	mapper := core.NewMapper(env.HDFS, env.Registry, "/"+name)
	mapping, err := mapper.MapPath(p, env.Mount(env.BD.Node(0)), wl.Dataset.Spec.Dir, core.MapOptions{
		Vars:         []string{wl.Var},
		RowsPerBlock: rows,
		// Mirror only the files this workload reads: a workload whose
		// Dataset.Files is a window of the generated directory gets a
		// window-sized job (the full list reproduces the full mirror).
		Paths: wl.Dataset.Files,
	})
	if err != nil {
		return nil, err
	}
	input := &core.InputFormat{
		HDFS: env.HDFS, Dir: mapping.Root, Registry: env.Registry, MountFor: env.Mount,
		Cost: core.CostModel{
			DecompressPerRawMB: env.Cfg.Cost.DecompressPerMB * env.Cfg.ByteScale,
			ConvertPerRawMB:    env.Cfg.Cost.BinConvertPerMB * env.Cfg.ByteScale,
		},
		Engine: opts.Engine,
		Caches: opts.Caches,
		Tier:   env.Tier,
		Obs:    env.Obs,
		Retry:  env.Cfg.ReadRetry,
	}
	res, stats, err := runProcessing(p, env, wl, name, input,
		func(tc *mapreduce.TaskContext, key string, value any) (*grid, error) {
			slab := value.(*core.Slab)
			vals, err := slab.Float32s()
			if err != nil {
				return nil, err
			}
			return &grid{
				t:           workloads.TimestampIndex(slab.PFSPath),
				levelOrigin: slab.Start[0],
				levels:      slab.Count[0], ny: slab.Count[1], nx: slab.Count[2],
				vals: vals,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	rep.ProcessSeconds = p.Now() - start
	rep.TotalSeconds = rep.ProcessSeconds
	fillReport(rep, env, res, stats, wl)
	rep.LevelsPerTask = float64(rows)
	return rep, nil
}

// RunSciDPStaged is the no-overlap ablation of SciDP: a first map wave
// reads every slab from the PFS (same selective reads, same slots), a
// barrier, then a second wave plots from memory. The difference to
// RunSciDP isolates the benefit of overlapping PFS reads with other
// tasks' computation.
func RunSciDPStaged(p *sim.Proc, env *Env, wl *Workload) (*Report, error) {
	env.ensureOpen()
	rep := &Report{Solution: "scidp-staged"}
	start := p.Now()
	mapper := core.NewMapper(env.HDFS, env.Registry, "/scidp-staged")
	mapping, err := mapper.MapPath(p, env.Mount(env.BD.Node(0)), wl.Dataset.Spec.Dir, core.MapOptions{
		Vars:         []string{wl.Var},
		RowsPerBlock: wl.Dataset.Spec.Levels,
	})
	if err != nil {
		return nil, err
	}
	// Wave 1: read-only job materializing every slab (decompression
	// charged here; conversion deferred to the compute wave).
	input := &core.InputFormat{
		HDFS: env.HDFS, Dir: mapping.Root, Registry: env.Registry, MountFor: env.Mount,
		Cost: core.CostModel{DecompressPerRawMB: env.Cfg.Cost.DecompressPerMB * env.Cfg.ByteScale},
		Obs:  env.Obs, Retry: env.Cfg.ReadRetry,
	}
	type stagedSlab struct {
		label string
		slab  *core.Slab
	}
	var staged []stagedSlab
	readJob := &mapreduce.Job{
		Name: "scidp-staged-read", Cluster: env.BD, SlotsPerNode: env.Cfg.SlotsPerNode,
		Obs: env.Obs, TaskStartup: env.Cfg.Cost.TaskStartup, Input: input,
		Map: func(tc *mapreduce.TaskContext, key string, value any) error {
			staged = append(staged, stagedSlab{label: key, slab: value.(*core.Slab)})
			return nil
		},
	}
	if _, err := readJob.Run(p); err != nil {
		return nil, err
	}
	// Wave 2: compute from memory.
	splits := make([]*mapreduce.Split, len(staged))
	for i, ss := range staged {
		splits[i] = &mapreduce.Split{Label: ss.label, Payload: ss.slab}
	}
	res, stats, err := runProcessing(p, env, wl, "scidp-staged", staticInput(splits),
		func(tc *mapreduce.TaskContext, key string, value any) (*grid, error) {
			slab := value.(*core.Slab)
			tc.Charge("Convert", env.Cfg.Cost.BinConvertPerMB*env.scaleMB(len(slab.Raw)))
			vals, err := slab.Float32s()
			if err != nil {
				return nil, err
			}
			return &grid{
				t:           workloads.TimestampIndex(slab.PFSPath),
				levelOrigin: slab.Start[0],
				levels:      slab.Count[0], ny: slab.Count[1], nx: slab.Count[2],
				vals: vals,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	rep.ProcessSeconds = p.Now() - start
	rep.TotalSeconds = rep.ProcessSeconds
	fillReport(rep, env, res, stats, wl)
	return rep, nil
}

// Runner is one solution's entry point.
type Runner func(p *sim.Proc, env *Env, wl *Workload) (*Report, error)

// All returns the five solutions in Table I order.
func All() map[string]Runner {
	return map[string]Runner{
		"naive":          RunNaive,
		"vanilla-hadoop": RunVanillaHadoop,
		"porthadoop":     RunPortHadoop,
		"scihadoop":      RunSciHadoop,
		"scidp":          RunSciDP,
	}
}

// DataPathRow is Table I's qualitative matrix.
type DataPathRow struct {
	// Solution is the row name.
	Solution string
	// Conversion reports whether text conversion is required.
	Conversion bool
	// Copy describes the data-copy column ("Sequential", "Parallel",
	// "No").
	Copy string
	// Processing describes the processing column.
	Processing string
}

// TableI returns the paper's Table I rows.
func TableI() []DataPathRow {
	return []DataPathRow{
		{Solution: "Naive", Conversion: true, Copy: "Sequential", Processing: "Sequential"},
		{Solution: "Vanilla Hadoop", Conversion: true, Copy: "Parallel", Processing: "Parallel"},
		{Solution: "PortHadoop", Conversion: true, Copy: "No", Processing: "Parallel"},
		{Solution: "SciHadoop", Conversion: false, Copy: "Parallel", Processing: "Parallel"},
		{Solution: "SciDP", Conversion: false, Copy: "No", Processing: "Parallel"},
	}
}

package solutions

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"scidp/internal/cluster"
	"scidp/internal/mapreduce"
	"scidp/internal/netcdf"
	"scidp/internal/rframe"
	"scidp/internal/rsql"
	"scidp/internal/sim"
	"scidp/internal/workloads"
)

// grid is one timestamp's decoded variable: levels x ny x nx values.
type grid struct {
	// t is the timestamp index.
	t int
	// levelOrigin is the global index of the first level (nonzero when a
	// task covers a sub-range of levels).
	levelOrigin int
	// levels, ny, nx are the grid dimensions.
	levels, ny, nx int
	// vals is the row-major payload.
	vals []float32
}

// level returns one level's values.
func (g *grid) level(i int) []float32 {
	n := g.ny * g.nx
	return g.vals[i*n : (i+1)*n]
}

// charger is the charging surface shared by MapReduce task contexts and
// the Naive solution's serial context.
type charger interface {
	Charge(phase string, d float64)
	Phase(name string, fn func())
	Proc() *sim.Proc
	Node() *cluster.Node
}

// serialCtx implements charger for the sequential Naive pipeline and
// accumulates phase totals.
type serialCtx struct {
	proc   *sim.Proc
	node   *cluster.Node
	phases map[string]float64
}

func newSerialCtx(p *sim.Proc, n *cluster.Node) *serialCtx {
	return &serialCtx{proc: p, node: n, phases: map[string]float64{}}
}

func (s *serialCtx) Charge(phase string, d float64) {
	s.proc.Sleep(d)
	s.phases[phase] += d
}

func (s *serialCtx) Phase(name string, fn func()) {
	start := s.proc.Now()
	fn()
	s.phases[name] += s.proc.Now() - start
}

func (s *serialCtx) Proc() *sim.Proc     { return s.proc }
func (s *serialCtx) Node() *cluster.Node { return s.node }

// gridFromCSV parses converted text into a grid — the read.table path.
// The dominant Convert cost is charged at paper scale, then the text is
// genuinely parsed.
func gridFromCSV(env *Env, tc charger, text []byte, spec workloads.NUWRFSpec) (*grid, error) {
	tc.Charge("Convert", env.Cfg.Cost.TextParsePerMB*env.scaleMB(len(text)))
	df, err := rframe.ReadTable(text)
	if err != nil {
		return nil, err
	}
	g := &grid{levels: spec.Levels, ny: spec.Lat, nx: spec.Lon}
	g.vals = make([]float32, g.levels*g.ny*g.nx)
	tCol, lCol, yCol, xCol, vCol := df.Col("t"), df.Col("level"), df.Col("lat"), df.Col("lon"), df.Col("value")
	if tCol == nil || lCol == nil || yCol == nil || xCol == nil || vCol == nil {
		return nil, fmt.Errorf("solutions: CSV missing expected columns, have %v", df.Names())
	}
	if df.NumRows() == 0 {
		return nil, fmt.Errorf("solutions: empty CSV")
	}
	g.t = int(tCol.Float64At(0))
	for r := 0; r < df.NumRows(); r++ {
		l := int(lCol.Float64At(r))
		y := int(yCol.Float64At(r))
		x := int(xCol.Float64At(r))
		idx := l*g.ny*g.nx + y*g.nx + x
		if idx < 0 || idx >= len(g.vals) {
			return nil, fmt.Errorf("solutions: CSV row %d outside grid", r)
		}
		g.vals[idx] = float32(vCol.Float64At(r))
	}
	return g, nil
}

// gridFromNC decodes a whole netCDF file blob (SciHadoop's in-task read
// of an HDFS-resident file) into the selected variable's grid.
func gridFromNC(env *Env, tc charger, blob []byte, varName string, t int) (*grid, error) {
	f, err := netcdf.Open(netcdf.BytesReader(blob))
	if err != nil {
		return nil, err
	}
	arr, err := f.GetVar(varName)
	if err != nil {
		return nil, err
	}
	rawMB := env.scaleMB(len(arr.Data))
	tc.Charge("Read", env.Cfg.Cost.DecompressPerMB*rawMB)
	tc.Charge("Convert", env.Cfg.Cost.BinConvertPerMB*rawMB)
	if len(arr.Shape) != 3 {
		return nil, fmt.Errorf("solutions: %s has rank %d", varName, len(arr.Shape))
	}
	return &grid{
		t:      t,
		levels: arr.Shape[0], ny: arr.Shape[1], nx: arr.Shape[2],
		vals: arr.Float32s(),
	}, nil
}

// taskOutput is what processing one grid produces.
type taskOutput struct {
	images   [][]byte
	levels   []int // global level index per image
	analysis *rframe.Frame
}

// processGrid is the per-task body shared by every solution: optional SQL
// analysis, then one plotted image per level (with highlights marked when
// requested).
func processGrid(env *Env, wl *Workload, tc charger, g *grid, sequential bool) (*taskOutput, error) {
	out := &taskOutput{}
	highlight := map[int][]rframe.GridPoint{}

	if wl.Analysis != AnalysisNone {
		df, err := gridFrame(g, wl.Var)
		if err != nil {
			return nil, err
		}
		tc.Charge("Analysis", env.Cfg.Cost.AnalysisPerMB*env.scaleMB(len(g.vals)*4))
		tables := map[string]*rframe.Frame{"df": df}
		switch wl.Analysis {
		case AnalysisHighlight:
			top, err := rsql.Query(tables, "SELECT level, lat, lon, value FROM df ORDER BY value DESC LIMIT 10")
			if err != nil {
				return nil, err
			}
			for r := 0; r < top.NumRows(); r++ {
				l := int(top.Col("level").Float64At(r))
				highlight[l] = append(highlight[l], rframe.GridPoint{
					Row: int(top.Col("lat").Float64At(r)),
					Col: int(top.Col("lon").Float64At(r)),
				})
			}
		case AnalysisTop1Pct:
			limit := int(math.Ceil(float64(df.NumRows()) / 100))
			top, err := rsql.Query(tables, fmt.Sprintf(
				"SELECT t, level, lat, lon, value FROM df ORDER BY value DESC LIMIT %d", limit))
			if err != nil {
				return nil, err
			}
			out.analysis = top
		}
	}

	for l := 0; l < g.levels; l++ {
		tc.Charge("Plot", env.plotCharge(sequential))
		global := g.levelOrigin + l
		png, err := rframe.Image2D(g.level(l), g.ny, g.nx, rframe.PlotOpts{
			Width: env.Cfg.PlotRes, Height: env.Cfg.PlotRes,
			Highlight: highlight[global],
		})
		if err != nil {
			return nil, err
		}
		out.images = append(out.images, png)
		out.levels = append(out.levels, global)
	}
	return out, nil
}

// gridFrame builds the tidy frame SQL analyses run over.
func gridFrame(g *grid, valueName string) (*rframe.Frame, error) {
	df, err := rframe.FromArray3D(
		[3]string{"level", "lat", "lon"},
		[3]int{g.levelOrigin, 0, 0},
		[3]int{g.levels, g.ny, g.nx},
		g.vals, "value")
	if err != nil {
		return nil, err
	}
	ts := make([]int64, df.NumRows())
	for i := range ts {
		ts[i] = int64(g.t)
	}
	if err := df.AddInt("t", ts); err != nil {
		return nil, err
	}
	return df, nil
}

// procStats tallies a processing job's outputs.
type procStats struct {
	images        int
	animations    int
	analysisBytes int64
}

// imgKV carries one plotted image through the shuffle.
type imgKV struct {
	t, level int
	png      []byte
}

// runProcessing executes the shared MapReduce processing job: decode each
// record to a grid, process it, send images and analysis frames to the
// reducers, which store everything on HDFS (the paper stores results via
// rhdfs in the Reduce tasks).
func runProcessing(p *sim.Proc, env *Env, wl *Workload, name string, input mapreduce.InputFormat,
	decode func(tc *mapreduce.TaskContext, key string, value any) (*grid, error)) (*mapreduce.Result, *procStats, error) {

	stats := &procStats{}
	outDir := "/results/" + name
	job := &mapreduce.Job{
		Name:         name,
		Cluster:      env.BD,
		SlotsPerNode: env.Cfg.SlotsPerNode,
		Obs:          env.Obs,
		Input:        input,
		TaskStartup:  env.Cfg.Cost.TaskStartup,
		NumReducers:  env.Cfg.Nodes,
		MaxAttempts:  env.Cfg.MaxAttempts,
		Faults:       env.Faults(),
		Speculation:  env.Cfg.Speculation,
		PairBytes: func(kv mapreduce.KV) int64 {
			switch v := kv.V.(type) {
			case imgKV:
				return int64(len(v.png)) + 16
			case *rframe.Frame:
				return int64(v.NumRows()) * 24
			}
			return int64(len(kv.K)) + 16
		},
		Map: func(tc *mapreduce.TaskContext, key string, value any) error {
			g, err := decode(tc, key, value)
			if err != nil {
				return err
			}
			out, err := processGrid(env, wl, tc, g, false)
			if err != nil {
				return err
			}
			for i, png := range out.images {
				tc.Emit(fmt.Sprintf("img/%04d", g.t), imgKV{t: g.t, level: out.levels[i], png: png})
			}
			if out.analysis != nil {
				tc.Emit("top1pct", out.analysis)
			}
			return nil
		},
		Reduce: func(tc *mapreduce.TaskContext, key string, values []any) error {
			if key == "top1pct" {
				combined := rframe.New()
				for _, v := range values {
					if err := combined.Append(v.(*rframe.Frame)); err != nil {
						return err
					}
				}
				sorted, err := combined.OrderBy("value", true)
				if err != nil {
					return err
				}
				text := sorted.WriteCSV()
				stats.analysisBytes += int64(len(text))
				return env.HDFS.WriteFile(tc.Proc(), tc.Node(), outDir+"/analysis/top1pct.csv", text)
			}
			// Animation frames: order by level and store.
			imgs := make([]imgKV, 0, len(values))
			for _, v := range values {
				imgs = append(imgs, v.(imgKV))
			}
			slices.SortFunc(imgs, func(a, b imgKV) int { return cmp.Compare(a.level, b.level) })
			for _, img := range imgs {
				path := fmt.Sprintf("%s/img/t%04d_l%03d.png", outDir, img.t, img.level)
				if err := env.HDFS.WriteFile(tc.Proc(), tc.Node(), path, img.png); err != nil {
					return err
				}
				stats.images++
			}
			// Anlys includes the animation phase (Table II): assemble this
			// timestamp's level series into an animated GIF on HDFS.
			if wl.Analysis != AnalysisNone && len(imgs) > 1 {
				frames := make([][]byte, len(imgs))
				for i := range imgs {
					frames[i] = imgs[i].png
				}
				anim, err := rframe.AnimateGIF(frames, 20)
				if err != nil {
					return err
				}
				path := fmt.Sprintf("%s/anim/t%04d.gif", outDir, imgs[0].t)
				if err := env.HDFS.WriteFile(tc.Proc(), tc.Node(), path, anim); err != nil {
					return err
				}
				stats.animations++
			}
			return nil
		},
	}
	res, err := job.Run(p)
	if err != nil {
		return nil, nil, err
	}
	return res, stats, nil
}

// fillReport moves engine stats into the report.
func fillReport(rep *Report, env *Env, res *mapreduce.Result, stats *procStats, wl *Workload) {
	rep.PhaseMeans = map[string]float64{}
	for _, name := range []string{"Read", "Convert", "Plot", "Analysis"} {
		if v := res.PhaseMean(name); v > 0 {
			rep.PhaseMeans[name] = v
		}
	}
	rep.LevelsPerTask = float64(wl.Dataset.Spec.Levels)
	rep.Images = stats.images
	rep.Animations = stats.animations
	rep.AnalysisBytes = stats.analysisBytes
}

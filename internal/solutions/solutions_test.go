package solutions

import (
	"fmt"
	"sort"
	"testing"

	"scidp/internal/sim"
	"scidp/internal/workloads"
)

// testSetup generates a small dataset and returns a fresh env+workload
// builder so each solution runs on its own kernel.
func testSetup(t *testing.T, timestamps int, analysis AnalysisKind) func() (*Env, *Workload, *sim.Kernel) {
	t.Helper()
	spec := workloads.NUWRFSpec{
		Timestamps: timestamps, Levels: 4, Lat: 24, Lon: 24, Vars: 6, Dir: "/nuwrf",
	}
	blobs, ds, err := workloads.GenerateBlobs(spec)
	if err != nil {
		t.Fatal(err)
	}
	return func() (*Env, *Workload, *sim.Kernel) {
		cfg := DefaultEnvConfig(1000, 50.0/float64(spec.Levels))
		cfg.Nodes = 4
		cfg.SlotsPerNode = 2
		cfg.PlotRes = 24
		env := NewEnv(cfg)
		workloads.Install(env.PFS, blobs)
		return env, &Workload{Dataset: ds, Var: "QR", Analysis: analysis}, env.K
	}
}

// runSolution drives one runner to completion.
func runSolution(t *testing.T, mk func() (*Env, *Workload, *sim.Kernel), run Runner) *Report {
	t.Helper()
	env, wl, k := mk()
	var rep *Report
	var err error
	k.Go("driver", func(p *sim.Proc) {
		rep, err = run(p, env, wl)
	})
	k.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestAllSolutionsProduceSameImages(t *testing.T) {
	mk := testSetup(t, 2, AnalysisNone)
	var reports []*Report
	var names []string
	for name, run := range All() {
		rep := runSolution(t, mk, run)
		reports = append(reports, rep)
		names = append(names, name)
	}
	want := 2 * 4 // timestamps x levels
	for i, rep := range reports {
		if rep.Images != want {
			t.Errorf("%s produced %d images, want %d", names[i], rep.Images, want)
		}
		if rep.TotalSeconds <= 0 {
			t.Errorf("%s total = %v", names[i], rep.TotalSeconds)
		}
	}
}

func TestImageBytesIdenticalAcrossSolutions(t *testing.T) {
	// Every data path must reconstruct the exact same grids: the PNGs in
	// HDFS must be byte-identical between SciDP and SciHadoop (and the
	// text paths, whose float formatting round-trips at 6 digits, must
	// produce the same image dimensions at minimum).
	mk := testSetup(t, 1, AnalysisNone)
	grab := func(run Runner, name string) map[string][]byte {
		env, wl, k := mk()
		var err error
		k.Go("driver", func(p *sim.Proc) {
			_, err = run(p, env, wl)
		})
		k.Run()
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]byte{}
		k.Go("collect", func(p *sim.Proc) {
			files, ferr := env.HDFS.Walk(p, "/results/"+name+"/img")
			if ferr != nil {
				t.Error(ferr)
				return
			}
			for _, f := range files {
				data, rerr := env.HDFS.ReadFile(p, env.BD.Node(0), f.Path)
				if rerr != nil {
					t.Error(rerr)
					return
				}
				// Strip the leading directory so keys align.
				out[f.Path[len("/results/"+name):]] = data
			}
		})
		k.Run()
		return out
	}
	scidp := grab(RunSciDP, "scidp")
	scihadoop := grab(RunSciHadoop, "scihadoop")
	if len(scidp) != 4 || len(scihadoop) != 4 {
		t.Fatalf("image counts: scidp=%d scihadoop=%d", len(scidp), len(scihadoop))
	}
	for k2, v := range scidp {
		if string(scihadoop[k2]) != string(v) {
			t.Fatalf("image %s differs between SciDP and SciHadoop", k2)
		}
	}
}

func TestSciDPFastestSciHadoopBeatsTextPaths(t *testing.T) {
	mk := testSetup(t, 4, AnalysisNone)
	totals := map[string]float64{}
	for name, run := range All() {
		totals[name] = runSolution(t, mk, run).TotalSeconds
	}
	if totals["scidp"] >= totals["scihadoop"] {
		t.Errorf("scidp (%v) should beat scihadoop (%v)", totals["scidp"], totals["scihadoop"])
	}
	if totals["scidp"] >= totals["porthadoop"] {
		t.Errorf("scidp (%v) should beat porthadoop (%v)", totals["scidp"], totals["porthadoop"])
	}
	if totals["vanilla-hadoop"] >= totals["naive"] {
		t.Errorf("vanilla (%v) should beat naive (%v)", totals["vanilla-hadoop"], totals["naive"])
	}
	if totals["scidp"] >= totals["vanilla-hadoop"] {
		t.Errorf("scidp (%v) should beat vanilla (%v)", totals["scidp"], totals["vanilla-hadoop"])
	}
}

func TestDataPathProperties(t *testing.T) {
	mk := testSetup(t, 2, AnalysisNone)
	reps := map[string]*Report{}
	for name, run := range All() {
		reps[name] = runSolution(t, mk, run)
	}
	// Conversion: text paths pay it; netCDF-aware paths do not.
	for _, name := range []string{"naive", "vanilla-hadoop", "porthadoop"} {
		if reps[name].ConvertSeconds <= 0 || reps[name].TextBytes <= 0 {
			t.Errorf("%s should require conversion: %+v", name, reps[name])
		}
	}
	for _, name := range []string{"scihadoop", "scidp"} {
		if reps[name].ConvertSeconds != 0 || reps[name].TextBytes != 0 {
			t.Errorf("%s should not convert: %+v", name, reps[name])
		}
	}
	// Copy: PortHadoop and SciDP move no data.
	for _, name := range []string{"porthadoop", "scidp"} {
		if reps[name].CopySeconds != 0 || reps[name].CopiedBytes != 0 {
			t.Errorf("%s should not copy: %+v", name, reps[name])
		}
	}
	for _, name := range []string{"naive", "vanilla-hadoop", "scihadoop"} {
		if reps[name].CopiedBytes <= 0 {
			t.Errorf("%s should copy data: %+v", name, reps[name])
		}
	}
	// SciHadoop copies whole files (all 6 vars): bigger than the one-var
	// compressed payload SciDP touches.
	if reps["scihadoop"].CopiedBytes <= reps["vanilla-hadoop"].CopiedBytes/10 {
		t.Error("scihadoop copy unexpectedly small")
	}
	// Converted text is much larger than the compressed variable.
	ds := func() *workloads.Dataset { _, wl, _ := mk(); return wl.Dataset }()
	ratio := float64(reps["vanilla-hadoop"].TextBytes) / float64(int64(len(ds.Files))*ds.VarStoredBytes)
	if ratio < 4 {
		t.Errorf("text/compressed ratio = %.1f, want order-of-magnitude inflation", ratio)
	}
}

func TestTableIMatrix(t *testing.T) {
	rows := TableI()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[4].Solution != "SciDP" || rows[4].Conversion || rows[4].Copy != "No" {
		t.Fatalf("SciDP row = %+v", rows[4])
	}
	if !rows[0].Conversion || rows[0].Copy != "Sequential" {
		t.Fatalf("Naive row = %+v", rows[0])
	}
}

func TestAnalysisCases(t *testing.T) {
	imgOnly := runSolution(t, testSetup(t, 2, AnalysisNone), RunSciDP)
	highlight := runSolution(t, testSetup(t, 2, AnalysisHighlight), RunSciDP)
	top1 := runSolution(t, testSetup(t, 2, AnalysisTop1Pct), RunSciDP)

	// Figure 9: highlight costs about the same as no analysis; top 1%
	// writes more to HDFS and takes longer.
	if highlight.TotalSeconds < imgOnly.TotalSeconds {
		t.Errorf("highlight (%v) should not beat img-only (%v)", highlight.TotalSeconds, imgOnly.TotalSeconds)
	}
	if highlight.TotalSeconds > imgOnly.TotalSeconds*1.25 {
		t.Errorf("highlight (%v) should be close to img-only (%v)", highlight.TotalSeconds, imgOnly.TotalSeconds)
	}
	if top1.AnalysisBytes <= highlight.AnalysisBytes {
		t.Errorf("top1%% bytes (%d) should exceed highlight (%d)", top1.AnalysisBytes, highlight.AnalysisBytes)
	}
	if top1.TotalSeconds <= highlight.TotalSeconds {
		t.Errorf("top1%% (%v) should exceed highlight (%v)", top1.TotalSeconds, highlight.TotalSeconds)
	}
}

func TestSciDPRowsPerBlockAblation(t *testing.T) {
	mk := testSetup(t, 2, AnalysisNone)
	perVar := runSolution(t, mk, RunSciDP)
	perLevel := runSolution(t, mk, func(p *sim.Proc, env *Env, wl *Workload) (*Report, error) {
		return RunSciDPWith(p, env, wl, SciDPOptions{RowsPerBlock: 1})
	})
	// Finer granularity makes more tasks (more startup) but same images.
	if perLevel.Images != perVar.Images {
		t.Fatalf("image counts differ: %d vs %d", perLevel.Images, perVar.Images)
	}
}

func TestPerLevelDecomposition(t *testing.T) {
	mk := testSetup(t, 2, AnalysisNone)
	scidp := runSolution(t, mk, RunSciDP)
	vanilla := runSolution(t, mk, RunVanillaHadoop)
	levelScale := 50.0 / 4.0
	// Figure 7: Convert dominates the text path; SciDP's convert is tiny.
	if vanilla.PerLevel("Convert", levelScale) <= scidp.PerLevel("Convert", levelScale) {
		t.Errorf("vanilla convert/level (%v) should dwarf scidp's (%v)",
			vanilla.PerLevel("Convert", levelScale), scidp.PerLevel("Convert", levelScale))
	}
	if scidp.PerLevel("Plot", levelScale) <= 0 {
		t.Error("scidp plot/level should be positive")
	}
}

func TestScaleOutReducesTime(t *testing.T) {
	spec := workloads.NUWRFSpec{Timestamps: 8, Levels: 4, Lat: 16, Lon: 16, Vars: 4, Dir: "/nuwrf"}
	blobs, ds, err := workloads.GenerateBlobs(spec)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := func(nodes int) float64 {
		cfg := DefaultEnvConfig(1000, 50.0/4)
		cfg.Nodes = nodes
		cfg.SlotsPerNode = 2
		cfg.PlotRes = 16
		env := NewEnv(cfg)
		workloads.Install(env.PFS, blobs)
		var rep *Report
		env.K.Go("driver", func(p *sim.Proc) {
			var rerr error
			rep, rerr = RunSciDP(p, env, &Workload{Dataset: ds, Var: "QR"})
			if rerr != nil {
				t.Error(rerr)
			}
		})
		env.K.Run()
		return rep.TotalSeconds
	}
	t2, t4 := elapsed(2), elapsed(4)
	if t4 >= t2 {
		t.Fatalf("4 nodes (%v) should beat 2 nodes (%v)", t4, t2)
	}
}

func TestReportSummaryAndOrdering(t *testing.T) {
	mk := testSetup(t, 2, AnalysisNone)
	var lines []string
	for name, run := range All() {
		rep := runSolution(t, mk, run)
		lines = append(lines, fmt.Sprintf("%s:%s", name, rep.Summary()))
	}
	sort.Strings(lines)
	if len(lines) != 5 {
		t.Fatalf("lines = %v", lines)
	}
}

func TestAnlysProducesAnimations(t *testing.T) {
	rep := runSolution(t, testSetup(t, 2, AnalysisHighlight), RunSciDP)
	if rep.Animations != 2 {
		t.Fatalf("animations = %d, want one GIF per timestamp", rep.Animations)
	}
	imgOnly := runSolution(t, testSetup(t, 2, AnalysisNone), RunSciDP)
	if imgOnly.Animations != 0 {
		t.Fatalf("Img-only should not animate, got %d", imgOnly.Animations)
	}
}

func TestAnlysAnimationStoredOnHDFS(t *testing.T) {
	mk := testSetup(t, 1, AnalysisHighlight)
	env, wl, k := mk()
	var err error
	k.Go("driver", func(p *sim.Proc) {
		_, err = RunSciDP(p, env, wl)
	})
	k.Run()
	if err != nil {
		t.Fatal(err)
	}
	k.Go("check", func(p *sim.Proc) {
		data, rerr := env.HDFS.ReadFile(p, env.BD.Node(0), "/results/scidp/anim/t0000.gif")
		if rerr != nil {
			t.Error(rerr)
			return
		}
		if len(data) < 6 || string(data[:6]) != "GIF89a" {
			t.Errorf("stored animation is not a GIF: %q", data[:6])
		}
	})
	k.Run()
}

package sparklite

import (
	"fmt"

	"scidp/internal/cluster"
	"scidp/internal/obs"
	"scidp/internal/rframe"
	"scidp/internal/rsql"
	"scidp/internal/sim"
)

// ArrayQuery distributes one compiled chunk-pushdown plan — the same
// ArrayPlan the local rsql.QueryArrays executor drives. The driver opens
// the table header-only, compiles the SQL, intersects WHERE predicates
// with the zone maps, and emits one partition per *surviving* chunk
// (skipped chunks never even become tasks); each executor task re-opens
// the table on its node, runs the fused single-pass scan over its chunk,
// and ships the partial back; the driver merges partials in chunk order
// via plan.Finalize, so the distributed result is byte-identical to the
// local one — and to the no-pushdown oracle's.
type ArrayQuery struct {
	// SQL is the query; its FROM name is whatever Open's table expects.
	SQL string
	// Mode selects pushdown or the full-scan oracle.
	Mode rsql.PushdownMode
	// Open returns the array table as seen from a node (nil node = the
	// driver, which only reads headers). Every node must see the same
	// schema and chunking.
	Open func(p *sim.Proc, node *cluster.Node) (rsql.ArrayTable, error)
	// Obs, when non-nil, receives the query counters and per-query span.
	Obs *obs.Registry

	plan      *rsql.ArrayPlan
	stats     *rsql.ScanStats
	survivors []int
	prepared  bool
}

// prepare opens the driver-side table, compiles the plan, and computes
// the skip-list — all header-only work.
func (s *ArrayQuery) prepare(p *sim.Proc) error {
	if s.prepared {
		return nil
	}
	t, err := s.Open(p, nil)
	if err != nil {
		return err
	}
	pl, err := rsql.CompileArray(s.SQL, t.Columns())
	if err != nil {
		return err
	}
	payload := true
	if pr, ok := t.(rsql.Projector); ok {
		payload = pr.Project(pl.Refs())
	}
	s.plan = pl
	s.stats, s.survivors = pl.Stats(t, s.Mode, payload)
	s.prepared = true
	return nil
}

// Partitions implements Source: one partition per surviving chunk, keyed
// so Collect's stable key sort restores chunk order.
func (s *ArrayQuery) Partitions(p *sim.Proc) ([]*Partition, error) {
	if err := s.prepare(p); err != nil {
		return nil, err
	}
	out := make([]*Partition, len(s.survivors))
	for k, ci := range s.survivors {
		out[k] = &Partition{Index: k, Label: fmt.Sprintf("query#%d", ci), Payload: ci}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sparklite: query plan pruned every chunk")
	}
	return out, nil
}

// Read implements Source: open the table on the executor's node, scan the
// partition's single chunk in one fused pass on the data plane, and ship
// the partial keyed by plan position.
func (s *ArrayQuery) Read(tc *TaskCtx, part *Partition) ([]Record, error) {
	t, err := s.Open(tc.Proc(), tc.Node())
	if err != nil {
		return nil, err
	}
	if pr, ok := t.(rsql.Projector); ok {
		pr.Project(s.plan.Refs())
	}
	ci := part.Payload.(int)
	t.Announce([]int{ci})
	ch, err := t.Read(ci)
	if err != nil {
		return nil, err
	}
	var partial *rsql.ChunkPartial
	var scanErr error
	t.Join(t.Fork(func() { partial, scanErr = s.plan.ScanChunk(ch) }))
	if scanErr != nil {
		return nil, scanErr
	}
	return []Record{{K: fmt.Sprintf("%08d", part.Index), V: partial}}, nil
}

// Run executes the distributed query end to end on sc and returns the
// merged frame plus the scan statistics.
func (s *ArrayQuery) Run(p *sim.Proc, sc *Context) (*rframe.Frame, *rsql.ScanStats, error) {
	if err := s.prepare(p); err != nil {
		return nil, nil, err
	}
	var sp *obs.Span
	if s.Obs != nil {
		sp = s.Obs.StartSpan("sparklite/query", "query", nil)
		sp.Arg("table", s.plan.From())
		sp.Arg("mode", s.Mode.String())
	}
	var parts []*rsql.ChunkPartial
	if len(s.survivors) > 0 {
		recs, err := sc.FromSource(s).Collect(p)
		if err != nil {
			return nil, nil, err
		}
		parts = make([]*rsql.ChunkPartial, len(recs))
		for i, r := range recs {
			parts[i] = r.V.(*rsql.ChunkPartial)
		}
	}
	for _, pt := range parts {
		s.stats.RowsMatched += pt.Rows()
	}
	out, err := s.plan.Finalize(parts)
	if err != nil {
		return nil, nil, err
	}
	if s.Obs != nil {
		s.Obs.Counter("query/chunks_scanned_total").Add(float64(s.stats.ChunksScanned))
		s.Obs.Counter("query/chunks_skipped_total").Add(float64(s.stats.ChunksSkipped))
		s.Obs.Counter("query/bytes_avoided_total").Add(float64(s.stats.BytesAvoided))
		sp.Arg("chunks_scanned", s.stats.ChunksScanned)
		sp.Arg("chunks_skipped", s.stats.ChunksSkipped)
		sp.Arg("bytes_avoided", s.stats.BytesAvoided)
		sp.Arg("rows_matched", s.stats.RowsMatched)
		sp.End()
	}
	return out, s.stats, nil
}

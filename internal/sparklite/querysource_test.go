package sparklite

import (
	"bytes"
	"math"
	"testing"

	"scidp/internal/aquery"
	"scidp/internal/cluster"
	"scidp/internal/ioengine"
	"scidp/internal/netcdf"
	"scidp/internal/obs"
	"scidp/internal/rsql"
	"scidp/internal/sim"
)

// queryBlob builds the shared array every node "mounts": QR(level=8,
// lat=4, lon=4), one chunk per level, values rising with level so value
// predicates prune via the zone maps.
func queryBlob(t *testing.T) []byte {
	t.Helper()
	w := netcdf.NewWriter()
	for _, d := range []struct {
		name string
		n    int
	}{{"level", 8}, {"lat", 4}, {"lon", 4}} {
		if err := w.AddDim(d.name, d.n); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AddVar("QR", netcdf.Float32, []string{"level", "lat", "lon"}, netcdf.Chunking{Shape: []int{1, 4, 4}, Deflate: 3}); err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, 8*4*4)
	for i := range vals {
		vals[i] = float32(math.Cos(float64(i)/5.0) + float64(i/16))
	}
	if err := w.PutVarFloat32("QR", vals); err != nil {
		t.Fatal(err)
	}
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

type blobEngine struct {
	data    []byte
	latency float64
}

func (m *blobEngine) ReadAt(p *sim.Proc, off, n int64) ([]byte, error) {
	p.Sleep(m.latency)
	return ioengine.Bytes(m.data).ReadAt(off, n)
}

func (m *blobEngine) Size() int64 { return int64(len(m.data)) }

func openQR(blob []byte) func(p *sim.Proc, node *cluster.Node) (rsql.ArrayTable, error) {
	return func(p *sim.Proc, node *cluster.Node) (rsql.ArrayTable, error) {
		b := ioengine.Bind(p, &blobEngine{data: blob, latency: 0.0008}, ioengine.Options{Prefetch: 1})
		f, err := netcdf.Open(b)
		if err != nil {
			return nil, err
		}
		return aquery.NewNetCDF(f, "QR")
	}
}

// runDistributed executes one ArrayQuery on a fresh kernel and cluster,
// returning the result CSV, the scan stats, and the final virtual time.
func runDistributed(t *testing.T, blob []byte, sql string, mode rsql.PushdownMode) ([]byte, *rsql.ScanStats, float64) {
	t.Helper()
	k := sim.NewKernel()
	pool := sim.NewComputePool(4)
	defer pool.Close()
	k.SetComputePool(pool)
	reg := obs.New()
	k.SetObs(reg)
	sc := NewContext(k, cluster.New(k, "bd", cluster.Config{
		Nodes: 3, SlotsPerNode: 2, DiskBW: 1e6, NICBW: 1e6, FabricBW: 4e6,
	}), 2)
	var csv []byte
	var stats *rsql.ScanStats
	k.Go("driver", func(p *sim.Proc) {
		q := &ArrayQuery{SQL: sql, Mode: mode, Open: openQR(blob), Obs: reg}
		out, st, err := q.Run(p, sc)
		if err != nil {
			t.Error(err)
			return
		}
		csv, stats = out.WriteCSV(), st
	})
	k.Run()
	return csv, stats, k.Now()
}

// runLocal executes the same SQL through the single-proc executor.
func runLocal(t *testing.T, blob []byte, sql string, mode rsql.PushdownMode) []byte {
	t.Helper()
	k := sim.NewKernel()
	var csv []byte
	k.Go("q", func(p *sim.Proc) {
		tab, err := openQR(blob)(p, nil)
		if err != nil {
			t.Error(err)
			return
		}
		out, _, err := rsql.QueryArrays(map[string]rsql.ArrayTable{"qr": tab}, sql, rsql.ArrayQueryOpts{Mode: mode})
		if err != nil {
			t.Error(err)
			return
		}
		csv = out.WriteCSV()
	})
	k.Run()
	return csv
}

// TestDistributedMatchesLocalAndOracle is the engine-equivalence check:
// the sparklite-distributed plan, the local executor, and the full-scan
// oracle must all produce byte-identical frames.
func TestDistributedMatchesLocalAndOracle(t *testing.T) {
	blob := queryBlob(t)
	for _, sql := range []string{
		`SELECT * FROM qr WHERE level = 5 AND value > 5.0 ORDER BY value DESC LIMIT 6`,
		`SELECT level, COUNT(*), SUM(value), MAX(value) FROM qr WHERE value > 2.0 GROUP BY level ORDER BY level`,
		`SELECT lat, lon FROM qr WHERE level >= 6 AND lat < 2 ORDER BY lat, lon LIMIT 10`,
	} {
		dist, st, _ := runDistributed(t, blob, sql, rsql.Pushdown)
		local := runLocal(t, blob, sql, rsql.Pushdown)
		oracle, ost, _ := runDistributed(t, blob, sql, rsql.PushdownOff)
		if !bytes.Equal(dist, local) {
			t.Fatalf("%q: distributed vs local:\n%svs\n%s", sql, dist, local)
		}
		if !bytes.Equal(dist, oracle) {
			t.Fatalf("%q: pushdown vs oracle:\n%svs\n%s", sql, dist, oracle)
		}
		if ost.ChunksScanned != 8 {
			t.Fatalf("%q: oracle scanned %d of 8", sql, ost.ChunksScanned)
		}
		if st.ChunksScanned >= ost.ChunksScanned {
			t.Fatalf("%q: pushdown scanned %d, no better than oracle", sql, st.ChunksScanned)
		}
	}
}

// TestDistributedPrunedToNothing: a plan that prunes every chunk still
// completes (no job is launched) and returns the empty/aggregate frame
// the oracle produces.
func TestDistributedPrunedToNothing(t *testing.T) {
	blob := queryBlob(t)
	dist, st, _ := runDistributed(t, blob, `SELECT COUNT(*), SUM(value) FROM qr WHERE level = 42`, rsql.Pushdown)
	oracle, _, _ := runDistributed(t, blob, `SELECT COUNT(*), SUM(value) FROM qr WHERE level = 42`, rsql.PushdownOff)
	if st.ChunksScanned != 0 || st.ChunksSkipped != 8 {
		t.Fatalf("stats %+v", st)
	}
	if !bytes.Equal(dist, oracle) {
		t.Fatalf("empty plan vs oracle:\n%svs\n%s", dist, oracle)
	}
}

// TestDistributedQueryDeterministic: same-seed runs agree on both the
// frame and the virtual clock.
func TestDistributedQueryDeterministic(t *testing.T) {
	blob := queryBlob(t)
	const sql = `SELECT level, COUNT(*), MAX(value) FROM qr WHERE value > 1.5 GROUP BY level ORDER BY level`
	csv1, _, now1 := runDistributed(t, blob, sql, rsql.Pushdown)
	csv2, _, now2 := runDistributed(t, blob, sql, rsql.Pushdown)
	if !bytes.Equal(csv1, csv2) || now1 != now2 {
		t.Fatalf("nondeterministic: now %v vs %v", now1, now2)
	}
}

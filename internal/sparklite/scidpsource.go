package sparklite

import (
	"fmt"

	"scidp/internal/cluster"
	"scidp/internal/core"
	"scidp/internal/hdfs"
	"scidp/internal/pfs"
	"scidp/internal/scifmt"
	"scidp/internal/sim"
)

// SciDPSource adapts a SciDP virtual mapping to a sparklite Source: one
// partition per dummy block, each read resolved by a PFS Reader on the
// executor's node — the H5Spark/SciSpark role, but over the paper's own
// Data Mapper machinery, demonstrating that SciDP "can be applied to any
// ABDS framework" (Section III-A).
type SciDPSource struct {
	// HDFS holds the virtual mapping.
	HDFS *hdfs.FS
	// Dir is the mapping root to walk.
	Dir string
	// Registry resolves formats.
	Registry *scifmt.Registry
	// MountFor returns an executor node's PFS mount.
	MountFor func(node *cluster.Node) *pfs.Client
	// DecompressPerRawMB charges inflation CPU per actual raw MB.
	DecompressPerRawMB float64
}

// Partitions implements Source: one partition per dummy block, no
// locality (the data lives on the PFS).
func (s *SciDPSource) Partitions(p *sim.Proc) ([]*Partition, error) {
	files, err := s.HDFS.Walk(p, s.Dir)
	if err != nil {
		return nil, err
	}
	var out []*Partition
	for _, f := range files {
		if !f.Virtual {
			continue
		}
		for i, b := range f.Blocks {
			out = append(out, &Partition{
				Index:   len(out),
				Label:   fmt.Sprintf("%s#%d", f.Path, i),
				Payload: b,
			})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sparklite: no virtual blocks under %s", s.Dir)
	}
	return out, nil
}

// Read implements Source: resolve the dummy block against the PFS and
// deliver one record — (label, *core.Slab) for scientific blocks,
// (label, []byte) for flat ones.
func (s *SciDPSource) Read(tc *TaskCtx, part *Partition) ([]Record, error) {
	reader := core.NewPFSReader(s.Registry, s.MountFor(tc.Node()))
	value, err := reader.ReadBlock(tc.Proc(), part.Payload.(*hdfs.Block))
	if err != nil {
		return nil, err
	}
	if s.DecompressPerRawMB > 0 {
		if slab, ok := value.(*core.Slab); ok {
			tc.Charge(s.DecompressPerRawMB * float64(len(slab.Raw)) / 1e6)
		}
	}
	return []Record{{K: part.Label, V: value}}, nil
}

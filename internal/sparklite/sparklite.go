// Package sparklite is a minimal Spark-like engine over the simulated
// cluster: lazily composed RDDs (map / filter / flatMap / reduceByKey /
// collect) executed as staged DAGs with narrow transformations fused into
// one task wave and shuffles between stages. The SciDP paper names Spark
// support as the designed extension path ("SciDP can be extended to
// support other BD frameworks, such as Spark and Impala"; SciSpark and
// H5Spark are the related systems) — this package demonstrates that the
// Data Mapper / PFS Reader design carries over: scidpsource.go provides
// an RDD whose partitions are SciDP dummy blocks resolved against the
// PFS.
//
// The engine intentionally implements only what the workloads here need;
// it is an extension demonstration, not a Spark reimplementation.
package sparklite

import (
	"fmt"
	"slices"
	"strings"

	"scidp/internal/cluster"
	"scidp/internal/sim"
)

// Record is one element of a distributed dataset.
type Record struct {
	// K is the key ("" for un-keyed data).
	K string
	// V is the value.
	V any
}

// Partition is one parallel slice of an RDD's input.
type Partition struct {
	// Index is the partition number.
	Index int
	// Label names the partition for traces.
	Label string
	// Payload carries whatever the source needs to read the partition.
	Payload any
	// PreferredHosts biases scheduling (empty = anywhere).
	PreferredHosts []string
}

// Source produces an RDD's partitions and reads them.
type Source interface {
	// Partitions enumerates the input (metadata cost on p).
	Partitions(p *sim.Proc) ([]*Partition, error)
	// Read materializes one partition's records on the task's node,
	// charging I/O through the context.
	Read(tc *TaskCtx, part *Partition) ([]Record, error)
}

// TaskCtx is the execution context inside one task.
type TaskCtx struct {
	proc *sim.Proc
	node *cluster.Node
}

// Proc returns the task's simulated process.
func (tc *TaskCtx) Proc() *sim.Proc { return tc.proc }

// Node returns the machine the task runs on.
func (tc *TaskCtx) Node() *cluster.Node { return tc.node }

// Charge blocks the task for d virtual seconds of modeled compute.
func (tc *TaskCtx) Charge(d float64) { tc.proc.Sleep(d) }

// op is one narrow transformation in a stage's fused pipeline.
type op struct {
	kind  string // "map", "filter", "flatMap"
	mapF  func(tc *TaskCtx, r Record) (Record, error)
	filF  func(tc *TaskCtx, r Record) (bool, error)
	flatF func(tc *TaskCtx, r Record) ([]Record, error)
}

// RDD is a lazily composed distributed dataset.
type RDD struct {
	sc     *Context
	source Source
	parent *RDD
	// shuffle marks a wide dependency: records are repartitioned by key
	// before this RDD's ops run.
	shuffle  bool
	reducer  func(tc *TaskCtx, key string, values []any) (any, error)
	reduceTo int
	ops      []op
}

// Context drives jobs on one cluster.
type Context struct {
	k            *sim.Kernel
	cluster      *cluster.Cluster
	slotsPerNode int
	// TaskStartup is the per-task launch cost (Spark executors reuse
	// JVMs, so the default is far below Hadoop's).
	TaskStartup float64
	// PairBytes sizes records for shuffle accounting.
	PairBytes func(r Record) int64
}

// NewContext builds a Spark-like context over the cluster.
func NewContext(k *sim.Kernel, cl *cluster.Cluster, slotsPerNode int) *Context {
	return &Context{
		k: k, cluster: cl, slotsPerNode: slotsPerNode,
		TaskStartup: 0.1,
		PairBytes:   func(r Record) int64 { return int64(len(r.K)) + 16 },
	}
}

// FromSource creates the root RDD of a lineage.
func (sc *Context) FromSource(src Source) *RDD { return &RDD{sc: sc, source: src} }

// Parallelize creates an RDD from in-memory records split into n
// partitions.
func (sc *Context) Parallelize(records []Record, n int) *RDD {
	return sc.FromSource(&memSource{records: records, parts: n})
}

type memSource struct {
	records []Record
	parts   int
}

func (m *memSource) Partitions(p *sim.Proc) ([]*Partition, error) {
	n := m.parts
	if n <= 0 {
		n = 1
	}
	out := make([]*Partition, n)
	for i := range out {
		out[i] = &Partition{Index: i, Label: fmt.Sprintf("mem-%d", i), Payload: i}
	}
	return out, nil
}

func (m *memSource) Read(tc *TaskCtx, part *Partition) ([]Record, error) {
	n := m.parts
	i := part.Payload.(int)
	lo := i * len(m.records) / n
	hi := (i + 1) * len(m.records) / n
	return m.records[lo:hi], nil
}

// chain derives a new RDD appending one narrow op (same stage).
func (r *RDD) chain(o op) *RDD {
	nr := *r
	nr.ops = append(append([]op(nil), r.ops...), o)
	return &nr
}

// Map applies f to every record.
func (r *RDD) Map(f func(tc *TaskCtx, rec Record) (Record, error)) *RDD {
	return r.chain(op{kind: "map", mapF: f})
}

// Filter keeps records where f is true.
func (r *RDD) Filter(f func(tc *TaskCtx, rec Record) (bool, error)) *RDD {
	return r.chain(op{kind: "filter", filF: f})
}

// FlatMap expands each record into zero or more records.
func (r *RDD) FlatMap(f func(tc *TaskCtx, rec Record) ([]Record, error)) *RDD {
	return r.chain(op{kind: "flatMap", flatF: f})
}

// ReduceByKey introduces a shuffle boundary: records are hashed to
// reducers partitions by key and each key's values are folded by f.
func (r *RDD) ReduceByKey(f func(tc *TaskCtx, key string, values []any) (any, error), reducers int) *RDD {
	if reducers <= 0 {
		reducers = len(r.sc.cluster.Nodes)
	}
	return &RDD{sc: r.sc, parent: r, shuffle: true, reducer: f, reduceTo: reducers}
}

// Collect executes the lineage from the driver process and returns the
// resulting records sorted by key (then insertion order).
func (r *RDD) Collect(p *sim.Proc) ([]Record, error) {
	recs, err := r.execute(p)
	if err != nil {
		return nil, err
	}
	slices.SortStableFunc(recs, func(a, b Record) int { return strings.Compare(a.K, b.K) })
	return recs, nil
}

// Count executes the lineage and returns the record count.
func (r *RDD) Count(p *sim.Proc) (int, error) {
	recs, err := r.execute(p)
	if err != nil {
		return 0, err
	}
	return len(recs), nil
}

// execute runs the DAG: recursively materialize the parent (previous
// stage), then this stage's wave.
func (r *RDD) execute(p *sim.Proc) ([]Record, error) {
	sc := r.sc
	if r.shuffle {
		parentOut, err := r.parent.execute(p)
		if err != nil {
			return nil, err
		}
		// Partition parent output by key hash; note where each bucket's
		// bytes come from is approximated as uniform across nodes (the
		// parent stage spread its tasks round-robin), so the shuffle
		// charges (reducers-1)/reducers of the bytes across the fabric.
		buckets := make([][]Record, r.reduceTo)
		var totalBytes int64
		for _, rec := range parentOut {
			b := hashString(rec.K) % uint32(r.reduceTo)
			buckets[b] = append(buckets[b], rec)
			totalBytes += sc.PairBytes(rec)
		}
		results := make([][]Record, r.reduceTo)
		tasks := make([]*stageTask, r.reduceTo)
		for i := 0; i < r.reduceTo; i++ {
			i := i
			tasks[i] = &stageTask{
				label: fmt.Sprintf("reduce-%d", i),
				body: func(tc *TaskCtx) error {
					// Shuffle fetch for this bucket.
					var bucketBytes int64
					for _, rec := range buckets[i] {
						bucketBytes += sc.PairBytes(rec)
					}
					remote := float64(bucketBytes) * float64(len(sc.cluster.Nodes)-1) / float64(len(sc.cluster.Nodes))
					if remote > 0 && len(sc.cluster.Nodes) > 1 {
						src := sc.cluster.Nodes[(i+1)%len(sc.cluster.Nodes)]
						tc.proc.Transfer(remote, sc.cluster.NetPath(src, tc.node)...)
					}
					// Group and reduce.
					grouped := map[string][]any{}
					var order []string
					for _, rec := range buckets[i] {
						if _, ok := grouped[rec.K]; !ok {
							order = append(order, rec.K)
						}
						grouped[rec.K] = append(grouped[rec.K], rec.V)
					}
					for _, k := range order {
						v, err := r.reducer(tc, k, grouped[k])
						if err != nil {
							return err
						}
						out := Record{K: k, V: v}
						// Post-shuffle narrow ops (rare but legal).
						kept, res, err := applyOps(tc, r.ops, out)
						if err != nil {
							return err
						}
						if kept {
							results[i] = append(results[i], res...)
						}
					}
					return nil
				},
			}
		}
		if err := sc.runStage(p, tasks); err != nil {
			return nil, err
		}
		var out []Record
		for _, part := range results {
			out = append(out, part...)
		}
		return out, nil
	}

	// Source stage: one task per partition, narrow ops fused.
	if r.source == nil {
		return nil, fmt.Errorf("sparklite: RDD has neither source nor parent")
	}
	parts, err := r.source.Partitions(p)
	if err != nil {
		return nil, err
	}
	results := make([][]Record, len(parts))
	tasks := make([]*stageTask, len(parts))
	for i, part := range parts {
		i, part := i, part
		tasks[i] = &stageTask{
			label: part.Label,
			locs:  part.PreferredHosts,
			body: func(tc *TaskCtx) error {
				recs, err := r.source.Read(tc, part)
				if err != nil {
					return err
				}
				for _, rec := range recs {
					kept, res, err := applyOps(tc, r.ops, rec)
					if err != nil {
						return err
					}
					if kept {
						results[i] = append(results[i], res...)
					}
				}
				return nil
			},
		}
	}
	if err := sc.runStage(p, tasks); err != nil {
		return nil, err
	}
	var out []Record
	for _, part := range results {
		out = append(out, part...)
	}
	return out, nil
}

// applyOps threads one record through a fused narrow pipeline. Returns
// kept=false when a filter drops it.
func applyOps(tc *TaskCtx, ops []op, rec Record) (bool, []Record, error) {
	cur := []Record{rec}
	for _, o := range ops {
		var next []Record
		for _, c := range cur {
			switch o.kind {
			case "map":
				m, err := o.mapF(tc, c)
				if err != nil {
					return false, nil, err
				}
				next = append(next, m)
			case "filter":
				ok, err := o.filF(tc, c)
				if err != nil {
					return false, nil, err
				}
				if ok {
					next = append(next, c)
				}
			case "flatMap":
				ms, err := o.flatF(tc, c)
				if err != nil {
					return false, nil, err
				}
				next = append(next, ms...)
			}
		}
		cur = next
		if len(cur) == 0 {
			return false, nil, nil
		}
	}
	return true, cur, nil
}

// stageTask is one schedulable task of a stage.
type stageTask struct {
	label string
	locs  []string
	body  func(tc *TaskCtx) error
}

// runStage executes tasks on the cluster's slots (same delay-scheduling
// locality policy as the MapReduce engine, reimplemented thinly here).
func (sc *Context) runStage(p *sim.Proc, tasks []*stageTask) error {
	k := p.Kernel()
	queue := append([]*stageTask(nil), tasks...)
	var firstErr error
	wg := k.NewWaitGroup()
	wg.Add(len(tasks))
	pickLocal := func(node string) *stageTask {
		for i, t := range queue {
			if len(t.locs) == 0 {
				queue = append(queue[:i], queue[i+1:]...)
				return t
			}
			for _, l := range t.locs {
				if l == node {
					queue = append(queue[:i], queue[i+1:]...)
					return t
				}
			}
		}
		return nil
	}
	for _, node := range sc.cluster.Nodes {
		slots := sc.slotsPerNode
		if slots <= 0 {
			slots = 1
		}
		for s := 0; s < slots; s++ {
			node := node
			k.Go(fmt.Sprintf("spark/%s-exec", node.Name), func(wp *sim.Proc) {
				misses := 0
				for {
					t := pickLocal(node.Name)
					if t == nil {
						if len(queue) == 0 {
							return
						}
						if misses < 3 {
							misses++
							wp.Sleep(0.2)
							continue
						}
						t = queue[0]
						queue = queue[1:]
					}
					misses = 0
					wp.Sleep(sc.TaskStartup)
					if err := t.body(&TaskCtx{proc: wp, node: node}); err != nil && firstErr == nil {
						firstErr = err
					}
					wg.Done()
				}
			})
		}
	}
	p.Wait(wg)
	return firstErr
}

// hashString is FNV-1a.
func hashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

package sparklite

import (
	"fmt"
	"strings"
	"testing"

	"scidp/internal/cluster"
	"scidp/internal/core"
	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

func testCluster(k *sim.Kernel, nodes, slots int) *cluster.Cluster {
	return cluster.New(k, "bd", cluster.Config{
		Nodes: nodes, SlotsPerNode: slots,
		DiskBW: 1e6, NICBW: 1e6, FabricBW: 4e6,
	})
}

// collect runs the lineage from a driver proc.
func collect(t *testing.T, k *sim.Kernel, rdd *RDD) []Record {
	t.Helper()
	var out []Record
	var err error
	k.Go("driver", func(p *sim.Proc) {
		out, err = rdd.Collect(p)
	})
	k.Run()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParallelizeMapFilterCollect(t *testing.T) {
	k := sim.NewKernel()
	sc := NewContext(k, testCluster(k, 2, 2), 2)
	var recs []Record
	for i := 0; i < 10; i++ {
		recs = append(recs, Record{K: fmt.Sprintf("k%02d", i), V: i})
	}
	rdd := sc.Parallelize(recs, 4).
		Map(func(tc *TaskCtx, r Record) (Record, error) {
			return Record{K: r.K, V: r.V.(int) * 2}, nil
		}).
		Filter(func(tc *TaskCtx, r Record) (bool, error) {
			return r.V.(int) >= 10, nil
		})
	out := collect(t, k, rdd)
	if len(out) != 5 {
		t.Fatalf("out = %d records, want 5", len(out))
	}
	if out[0].K != "k05" || out[0].V.(int) != 10 {
		t.Fatalf("first = %+v", out[0])
	}
}

func TestFlatMapAndCount(t *testing.T) {
	k := sim.NewKernel()
	sc := NewContext(k, testCluster(k, 2, 2), 2)
	rdd := sc.Parallelize([]Record{
		{K: "a", V: "one two"},
		{K: "b", V: "three"},
	}, 2).FlatMap(func(tc *TaskCtx, r Record) ([]Record, error) {
		var out []Record
		for _, w := range strings.Fields(r.V.(string)) {
			out = append(out, Record{K: w, V: 1})
		}
		return out, nil
	})
	var n int
	var err error
	k.Go("driver", func(p *sim.Proc) {
		n, err = rdd.Count(p)
	})
	k.Run()
	if err != nil || n != 3 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

func TestWordCountWithShuffle(t *testing.T) {
	k := sim.NewKernel()
	sc := NewContext(k, testCluster(k, 3, 2), 2)
	lines := []Record{
		{V: "a b a"}, {V: "c"}, {V: "b b"}, {V: "a c c"},
	}
	rdd := sc.Parallelize(lines, 4).
		FlatMap(func(tc *TaskCtx, r Record) ([]Record, error) {
			var out []Record
			for _, w := range strings.Fields(r.V.(string)) {
				out = append(out, Record{K: w, V: 1})
			}
			return out, nil
		}).
		ReduceByKey(func(tc *TaskCtx, key string, values []any) (any, error) {
			sum := 0
			for _, v := range values {
				sum += v.(int)
			}
			return sum, nil
		}, 2)
	out := collect(t, k, rdd)
	want := map[string]int{"a": 3, "b": 3, "c": 3}
	if len(out) != 3 {
		t.Fatalf("out = %+v", out)
	}
	for _, r := range out {
		if r.V.(int) != want[r.K] {
			t.Errorf("%s = %v, want %d", r.K, r.V, want[r.K])
		}
	}
}

func TestStageErrorPropagates(t *testing.T) {
	k := sim.NewKernel()
	sc := NewContext(k, testCluster(k, 2, 1), 1)
	rdd := sc.Parallelize([]Record{{V: 1}}, 1).
		Map(func(tc *TaskCtx, r Record) (Record, error) {
			return Record{}, fmt.Errorf("boom")
		})
	var err error
	k.Go("driver", func(p *sim.Proc) {
		_, err = rdd.Collect(p)
	})
	k.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyLineageFails(t *testing.T) {
	k := sim.NewKernel()
	rdd := &RDD{sc: NewContext(k, testCluster(k, 1, 1), 1)}
	var err error
	k.Go("driver", func(p *sim.Proc) {
		_, err = rdd.Collect(p)
	})
	k.Run()
	if err == nil {
		t.Fatal("sourceless RDD should fail")
	}
}

func TestTasksRespectSlots(t *testing.T) {
	// 8 partitions, each charging 1 s: 1 node x 2 slots => >= 4 s; 4
	// nodes x 2 slots => ~1 s.
	elapsed := func(nodes int) float64 {
		k := sim.NewKernel()
		sc := NewContext(k, testCluster(k, nodes, 2), 2)
		sc.TaskStartup = 0
		var recs []Record
		for i := 0; i < 8; i++ {
			recs = append(recs, Record{K: fmt.Sprintf("%d", i), V: i})
		}
		rdd := sc.Parallelize(recs, 8).Map(func(tc *TaskCtx, r Record) (Record, error) {
			tc.Charge(1.0)
			return r, nil
		})
		var end float64
		k.Go("driver", func(p *sim.Proc) {
			rdd.Collect(p)
			end = p.Now()
		})
		k.Run()
		return end
	}
	one, four := elapsed(1), elapsed(4)
	if one < 3.9 {
		t.Fatalf("1 node took %v, want >= 4", one)
	}
	if four > one/2 {
		t.Fatalf("4 nodes (%v) should be well under 1 node (%v)", four, one)
	}
}

// TestSciDPSourceEndToEnd: the paper's extension path — SciDP dummy
// blocks consumed by the Spark-like engine, computing per-timestamp sums
// through RDD transformations.
func TestSciDPSourceEndToEnd(t *testing.T) {
	env := solutions.NewEnv(solutions.DefaultEnvConfig(1000, 10))
	spec := workloads.NUWRFSpec{Timestamps: 3, Levels: 4, Lat: 8, Lon: 8, Vars: 3, Dir: "/nuwrf"}
	ds, err := workloads.Generate(env.PFS, spec)
	if err != nil {
		t.Fatal(err)
	}
	_ = ds
	sc := NewContext(env.K, env.BD, 4)
	var out []Record
	env.K.Go("driver", func(p *sim.Proc) {
		mapper := core.NewMapper(env.HDFS, env.Registry, "/scidp")
		mapping, err := mapper.MapPath(p, env.Mount(env.BD.Node(0)), "/nuwrf", core.MapOptions{
			Vars: []string{"QR"}, RowsPerBlock: spec.Levels,
		})
		if err != nil {
			t.Error(err)
			return
		}
		src := &SciDPSource{
			HDFS: env.HDFS, Dir: mapping.Root,
			Registry: env.Registry, MountFor: env.Mount,
			DecompressPerRawMB: 0.01,
		}
		rdd := sc.FromSource(src).
			Map(func(tc *TaskCtx, r Record) (Record, error) {
				slab := r.V.(*core.Slab)
				vals, err := slab.Float32s()
				if err != nil {
					return Record{}, err
				}
				var sum float64
				for _, v := range vals {
					sum += float64(v)
				}
				return Record{K: slab.PFSPath, V: sum}, nil
			}).
			ReduceByKey(func(tc *TaskCtx, key string, values []any) (any, error) {
				var sum float64
				for _, v := range values {
					sum += v.(float64)
				}
				return sum, nil
			}, 2)
		out, err = rdd.Collect(p)
		if err != nil {
			t.Error(err)
		}
	})
	env.K.Run()
	if len(out) != 3 {
		t.Fatalf("out = %d records, want 3 (one per timestamp)", len(out))
	}
	for _, r := range out {
		if r.V.(float64) <= 0 {
			t.Errorf("%s sum = %v, want positive rainfall", r.K, r.V)
		}
	}
	if env.HDFS.TotalUsed() != 0 {
		t.Fatal("spark path must also move no data into HDFS")
	}
}

func TestSciDPSourceEmptyDirFails(t *testing.T) {
	env := solutions.NewEnv(solutions.DefaultEnvConfig(1000, 10))
	sc := NewContext(env.K, env.BD, 1)
	var err error
	env.K.Go("driver", func(p *sim.Proc) {
		env.HDFS.Mkdir(p, "/empty")
		src := &SciDPSource{HDFS: env.HDFS, Dir: "/empty", Registry: env.Registry, MountFor: env.Mount}
		_, err = sc.FromSource(src).Collect(p)
	})
	env.K.Run()
	if err == nil {
		t.Fatal("empty mapping should fail")
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() string {
		k := sim.NewKernel()
		sc := NewContext(k, testCluster(k, 3, 2), 2)
		var recs []Record
		for i := 0; i < 12; i++ {
			recs = append(recs, Record{K: fmt.Sprintf("k%d", i%4), V: i})
		}
		rdd := sc.Parallelize(recs, 6).
			ReduceByKey(func(tc *TaskCtx, key string, values []any) (any, error) {
				s := 0
				for _, v := range values {
					s += v.(int)
				}
				return s, nil
			}, 3)
		out := collect(t, k, rdd)
		var sb strings.Builder
		for _, r := range out {
			fmt.Fprintf(&sb, "%s=%v;", r.K, r.V)
		}
		fmt.Fprintf(&sb, "@%.4f", k.Now())
		return sb.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %s vs %s", a, b)
	}
}

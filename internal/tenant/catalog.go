package tenant

import (
	"bytes"
	"fmt"

	"scidp/internal/mapreduce"
	"scidp/internal/sim"
	"scidp/internal/workloads"
)

// marker is the word the grep kind counts; InstallTextInputs scatters
// it through the shared input pool.
const marker = "storm"

// installInputs puts the shared read-only input pool on HDFS (instant
// placement — setup, not measured). Every job reads a size-dependent
// prefix of the pool, so concurrent jobs share blocks without ever
// writing into each other's namespace.
func (s *Service) installInputs() {
	s.inputs = workloads.InstallTextInputs(s.be, workloads.MiniConfig{
		Files: s.cfg.InputFiles, FileBytes: s.cfg.FileBytes,
	}, marker)
}

// sizeFiles maps a JobSpec size to its input-file count.
func (s *Service) sizeFiles(size string) (int, error) {
	var n int
	switch size {
	case "small":
		n = 2
	case "medium":
		n = 4
	case "large":
		n = 8
	default:
		return 0, fmt.Errorf("tenant: unknown size %q", size)
	}
	if n > s.cfg.InputFiles {
		n = s.cfg.InputFiles
	}
	return n, nil
}

// demand computes a spec's slot demand (map tasks plus reducers) and
// validates the kind and size.
func (s *Service) demand(spec JobSpec) (int, error) {
	if spec.Tenant == "" {
		return 0, fmt.Errorf("tenant: empty tenant name")
	}
	n, err := s.sizeFiles(spec.Size)
	if err != nil {
		return 0, err
	}
	switch spec.Kind {
	case "grep":
		return n + 1, nil
	case "sort":
		return n + s.cfg.Reducers, nil
	case "write":
		return n, nil
	default:
		return 0, fmt.Errorf("tenant: unknown kind %q", spec.Kind)
	}
}

// outDir is a job's private HDFS output namespace.
func (s *Service) outDir(j *Job) string {
	return fmt.Sprintf("/tenant/%s/job-%04d", j.Spec.Tenant, j.ID)
}

// runJob executes one catalog job on the cluster from the driver
// process p, with the job's lease gating its slots and the env's chaos
// injector and retry budget applied. It fills j.Result / j.OutputBytes.
func (s *Service) runJob(p *sim.Proc, j *Job) error {
	files, err := s.sizeFiles(j.Spec.Size)
	if err != nil {
		return err
	}
	base := &mapreduce.Job{
		Name:         fmt.Sprintf("%s-%s-%04d", j.Spec.Kind, j.Spec.Size, j.ID),
		Cluster:      s.env.BD,
		SlotsPerNode: s.env.Cfg.SlotsPerNode,
		TaskStartup:  s.cfg.TaskStartup,
		MaxAttempts:  s.env.Cfg.MaxAttempts,
		Faults:       s.env.Faults(),
		Obs:          s.obs,
		Lease:        j.lease,
	}
	switch j.Spec.Kind {
	case "grep":
		return s.runGrep(p, j, base, files)
	case "sort":
		return s.runSort(p, j, base, files)
	case "write":
		return s.runWrite(p, j, base, files)
	}
	return fmt.Errorf("tenant: unknown kind %q", j.Spec.Kind)
}

// runGrep counts the marker across the job's input prefix: map scans
// each block (modeled cost Charge("Scan"), real count on the data
// plane), one reducer sums, and the driver writes the count to the
// job's output dir.
func (s *Service) runGrep(p *sim.Proc, j *Job, job *mapreduce.Job, files int) error {
	job.Input = s.be.Input(s.inputs[:files], 0)
	job.Map = func(tc *mapreduce.TaskContext, key string, value any) error {
		data := value.([]byte)
		tc.Charge("Scan", s.cfg.ScanPerMB*float64(len(data))/1e6)
		var n int64
		tc.Compute(func() { n = int64(bytes.Count(data, []byte(marker))) })
		tc.Emit("count", n)
		return nil
	}
	job.Reduce = func(tc *mapreduce.TaskContext, key string, values []any) error {
		var sum int64
		for _, v := range values {
			sum += v.(int64)
		}
		tc.Emit(key, sum)
		return nil
	}
	res, err := job.Run(p)
	if err != nil {
		return err
	}
	j.Result = res.Output[0].V.(int64)
	return s.writeResult(p, j, fmt.Sprintf("%s=%d\n", marker, j.Result))
}

// runSort is a TeraSort-style shuffle: map emits fixed-width records
// keyed by their first bytes, reducers count them and write sorted runs
// into the job's output dir.
func (s *Service) runSort(p *sim.Proc, j *Job, job *mapreduce.Job, files int) error {
	const rec = 100
	job.Input = s.be.Input(s.inputs[:files], 0)
	job.NumReducers = s.cfg.Reducers
	job.PairBytes = func(kv mapreduce.KV) int64 { return rec }
	job.Partition = func(key string, n int) int {
		if len(key) == 0 {
			return 0
		}
		return int(key[0]) * n / 256
	}
	job.Map = func(tc *mapreduce.TaskContext, key string, value any) error {
		data := value.([]byte)
		tc.Charge("Scan", s.cfg.ScanPerMB*float64(len(data))/1e6)
		tc.Compute(func() {
			for off := 0; off+rec <= len(data); off += rec {
				tc.Emit(string(data[off:off+10]), rec)
			}
		})
		return nil
	}
	job.Reduce = func(tc *mapreduce.TaskContext, key string, values []any) error {
		tc.Emit(key, len(values))
		return nil
	}
	res, err := job.Run(p)
	if err != nil {
		return err
	}
	// Output sizes come from the committed reduce output, so retried
	// attempts can never double-count.
	var outBytes int64
	for _, kv := range res.Output {
		outBytes += rec * int64(kv.V.(int))
	}
	j.Result = outBytes
	// Reducers' sorted runs land in the job's namespace, written from
	// the driver (the reduce wave has completed; sizes are exact).
	perRed := outBytes / int64(s.cfg.Reducers)
	for r := 0; r < s.cfg.Reducers; r++ {
		node := s.env.BD.Nodes[r%len(s.env.BD.Nodes)]
		path := fmt.Sprintf("%s/part-%05d", s.outDir(j), r)
		if err := s.be.Write(p, node, path, make([]byte, perRed)); err != nil {
			return err
		}
		j.OutputBytes += perRed
	}
	return nil
}

// runWrite is a TestDFSIO-style write: one map task per output file,
// each writing FileBytes into the job's output dir from its node. The
// job is map-only, so its demand is exactly the file count. The format
// charge precedes the write: preemption kills land only inside Charge,
// so a preempted (or fault-failed) attempt has never written its file
// and the retry's create cannot collide.
func (s *Service) runWrite(p *sim.Proc, j *Job, job *mapreduce.Job, files int) error {
	job.Input = writeInput(files)
	job.Map = func(tc *mapreduce.TaskContext, key string, value any) error {
		i := value.(int)
		path := fmt.Sprintf("%s/part-%04d", s.outDir(j), i)
		data := make([]byte, s.cfg.FileBytes)
		tc.Charge("Format", s.cfg.ScanPerMB*float64(len(data))/2e6)
		var err error
		tc.Phase("Write", func() {
			err = s.be.Write(tc.Proc(), tc.Node(), path, data)
		})
		if err != nil {
			return err
		}
		tc.Emit("bytes", int64(len(data)))
		return nil
	}
	res, err := job.Run(p)
	if err != nil {
		return err
	}
	var written int64
	for _, kv := range res.Output {
		written += kv.V.(int64)
	}
	j.Result = written
	j.OutputBytes = written
	return nil
}

// writeResult stores a small result file in the job's output dir from
// a deterministic home node.
func (s *Service) writeResult(p *sim.Proc, j *Job, content string) error {
	node := s.env.BD.Nodes[j.ID%len(s.env.BD.Nodes)]
	if err := s.be.Write(p, node, s.outDir(j)+"/result", []byte(content)); err != nil {
		return err
	}
	j.OutputBytes += int64(len(content))
	return nil
}

// writeInput mints n location-free splits whose payload is the output
// index — the input side of the write kind.
func writeInput(n int) mapreduce.InputFormat { return writeSplits(n) }

type writeSplits int

func (w writeSplits) Splits(p *sim.Proc) ([]*mapreduce.Split, error) {
	out := make([]*mapreduce.Split, w)
	for i := range out {
		out[i] = &mapreduce.Split{Label: fmt.Sprintf("w#%d", i), Payload: i, Length: 1}
	}
	return out, nil
}

func (w writeSplits) ForEach(tc *mapreduce.TaskContext, s *mapreduce.Split, fn func(key string, value any) error) error {
	return fn(s.Label, s.Payload.(int))
}

package tenant

import (
	"encoding/json"
	"testing"

	"scidp/internal/chaos"
	"scidp/internal/core"
	"scidp/internal/obs"
	"scidp/internal/solutions"
)

// mtChaosPlan is a recovery-exercising plan sized to the unit trace's
// ~60 s horizon: a DataNode crash, stragglers, and task failures.
func mtChaosPlan() *chaos.Plan {
	return &chaos.Plan{Seed: 7, Rules: []chaos.Rule{
		{Kind: chaos.KindDNCrash, At: 6.0, Target: 1},
		{Kind: chaos.KindStraggler, At: 1.0, Until: 40.0, Rate: 0.2, Factor: 4},
		{Kind: chaos.KindTaskFail, At: 2.0, Until: 40.0, Rate: 0.1},
	}}
}

// replayOnce builds a fresh env+service at the given worker count
// (optionally with the chaos plan) and replays the unit trace, returning
// the service digest, the summary JSON, and the export digest.
func replayOnce(t *testing.T, workers int, withChaos bool) (string, string, string) {
	t.Helper()
	reg := obs.New()
	reg.SetProcess("scidpd") // fixed: worker count must not appear in exports
	cfg := solutions.EnvConfig{
		Nodes: 4, SlotsPerNode: 2, ByteScale: 1,
		Obs: reg, Workers: workers,
	}
	if withChaos {
		cfg.Chaos = mtChaosPlan()
		cfg.Replication = 2
		cfg.MaxAttempts = 3
		cfg.ReadRetry = core.RetryPolicy{MaxRetries: 3, Backoff: 0.2}
	}
	env := solutions.NewEnv(cfg)
	defer env.Close()
	svc := New(env, Config{})
	sum, err := Replay(svc, smallTrace())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed == 0 {
		t.Fatalf("nothing completed (workers=%d chaos=%v)", workers, withChaos)
	}
	if withChaos && sum.Completed+sum.Failed+sum.Rejected != sum.Jobs {
		t.Fatalf("jobs unaccounted for: %+v", sum)
	}
	sumJSON, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	return svc.Digest(), string(sumJSON), RegistryDigest(reg)
}

// TestReplayDeterministicAcrossWorkers is the subsystem's determinism
// contract: the same arrival trace must produce byte-identical job
// completion order, outcomes, summaries, and trace/metrics exports at
// any ComputePool size — inline (-1), 1, and 4 workers — with and
// without a chaos plan. (Workers=0 detaches the data plane entirely,
// which is a different event-schedule shape: Await join events are
// never scheduled. The byte-identity contract, here as in the parallel
// bench, is across pooled counts.)
func TestReplayDeterministicAcrossWorkers(t *testing.T) {
	for _, withChaos := range []bool{false, true} {
		name := "clean"
		if withChaos {
			name = "chaos"
		}
		t.Run(name, func(t *testing.T) {
			refDigest, refSum, refExport := replayOnce(t, -1, withChaos)
			for _, workers := range []int{1, 4} {
				d, s, e := replayOnce(t, workers, withChaos)
				if d != refDigest {
					t.Errorf("workers=%d: completion digest diverged", workers)
				}
				if s != refSum {
					t.Errorf("workers=%d: summary diverged:\n  ref: %s\n  got: %s", workers, refSum, s)
				}
				if e != refExport {
					t.Errorf("workers=%d: export digest diverged", workers)
				}
			}
		})
	}
}

// TestReplaySameSeedRepeat replays the identical configuration twice:
// byte-identical everything, the smoke test's two-run contract.
func TestReplaySameSeedRepeat(t *testing.T) {
	d1, s1, e1 := replayOnce(t, 2, true)
	d2, s2, e2 := replayOnce(t, 2, true)
	if d1 != d2 || s1 != s2 || e1 != e2 {
		t.Errorf("same-seed repeat diverged: digest %v summary %v export %v",
			d1 == d2, s1 == s2, e1 == e2)
	}
}

// TestPreemptionDeterminism replays the preemption-heavy trace from
// TestPreemptionOnArrival across worker counts: revocation points ride
// on Charge quanta, which live entirely in virtual time.
func TestPreemptionDeterminism(t *testing.T) {
	run := func(workers int) (string, int) {
		reg := obs.New()
		reg.SetProcess("scidpd")
		env := solutions.NewEnv(solutions.EnvConfig{
			Nodes: 4, SlotsPerNode: 2, ByteScale: 1, Obs: reg, Workers: workers,
		})
		defer env.Close()
		svc := New(env, Config{ScanPerMB: 40})
		tr := &Trace{
			Quotas: map[string]Quota{
				"hog":   {MaxRunning: 1, Weight: 1},
				"burst": {MaxRunning: 4, Weight: 4},
			},
			Arrivals: []Arrival{
				{At: 0.1, Spec: JobSpec{Tenant: "hog", Kind: "grep", Size: "large"}},
				{At: 4.0, Spec: JobSpec{Tenant: "burst", Kind: "grep", Size: "small"}},
				{At: 4.1, Spec: JobSpec{Tenant: "burst", Kind: "grep", Size: "small"}},
				{At: 4.2, Spec: JobSpec{Tenant: "burst", Kind: "sort", Size: "small"}},
			},
		}
		sum, err := Replay(svc, tr)
		if err != nil {
			t.Fatal(err)
		}
		return svc.Digest() + "|" + RegistryDigest(reg), sum.Preemptions
	}
	ref, preempts := run(-1)
	if preempts == 0 {
		t.Fatal("trace triggered no preemptions")
	}
	for _, workers := range []int{1, 4} {
		if got, _ := run(workers); got != ref {
			t.Errorf("workers=%d: preemption run diverged", workers)
		}
	}
}

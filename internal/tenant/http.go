package tenant

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
)

// Server is the HTTP/JSON control surface over a Service. HTTP handlers
// run on real goroutines while the simulation is single-threaded, so
// every request crosses a bridge: take the kernel lock, apply the
// request's mutations as kernel state (submissions schedule their tick
// and driver events), then crank Kernel.Run until the event queue
// drains, and only then marshal the response. Virtual time rushes ahead
// of real time — a POST /jobs response already reflects the submitted
// job's completed future, which is what a deterministic simulation of a
// daemon means: the request sequence, not the wall clock, orders
// everything.
type Server struct {
	mu  sync.Mutex
	svc *Service
}

// NewServer wraps a service for HTTP serving.
func NewServer(svc *Service) *Server { return &Server{svc: svc} }

// do runs fn under the bridge: kernel mutations happen only while the
// lock is held and the kernel is parked between Run calls.
func (s *Server) do(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn()
	s.svc.env.K.Run()
}

// Handler returns the control API mux:
//
//	POST /jobs     {"tenant","kind","size","priority"} -> job record
//	GET  /jobs     all job records
//	GET  /jobs/{id} one job record
//	GET  /tenants  tenant states (quota, queue depth, counters)
//	GET  /metrics  Prometheus text exposition (the obs registry)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.postJob)
	mux.HandleFunc("GET /jobs", s.getJobs)
	mux.HandleFunc("GET /jobs/{id}", s.getJob)
	mux.HandleFunc("GET /tenants", s.getTenants)
	mux.HandleFunc("GET /metrics", s.getMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type httpError struct {
	Error string `json:"error"`
}

func (s *Server) postJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	var job *Job
	var err error
	s.do(func() { job, err = s.svc.Submit(spec) })
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	if job.State == StateRejected {
		writeJSON(w, http.StatusTooManyRequests, job)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Server) getJobs(w http.ResponseWriter, r *http.Request) {
	var jobs []Job
	s.do(func() {
		for _, j := range s.svc.Jobs() {
			jobs = append(jobs, *j)
		}
	})
	writeJSON(w, http.StatusOK, jobs)
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad job id"})
		return
	}
	var job *Job
	s.do(func() {
		if j := s.svc.Job(id); j != nil {
			cp := *j
			job = &cp
		}
	})
	if job == nil {
		writeJSON(w, http.StatusNotFound, httpError{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// TenantView is the GET /tenants wire format.
type TenantView struct {
	Name        string `json:"name"`
	Quota       Quota  `json:"quota"`
	QueueDepth  int    `json:"queue_depth"`
	Running     int    `json:"running"`
	Submitted   int    `json:"submitted"`
	Completed   int    `json:"completed"`
	Rejected    int    `json:"rejected"`
	Failed      int    `json:"failed"`
	Preemptions int    `json:"preemptions"`
	Backfills   int    `json:"backfills"`
}

func (s *Server) getTenants(w http.ResponseWriter, r *http.Request) {
	var views []TenantView
	s.do(func() {
		for _, name := range s.svc.TenantNames() {
			t := s.svc.TenantState(name)
			views = append(views, TenantView{
				Name: name, Quota: t.Quota,
				QueueDepth: t.QueueDepth(), Running: t.RunningJobs(),
				Submitted: t.Submitted, Completed: t.Completed,
				Rejected: t.Rejected, Failed: t.Failed,
				Preemptions: t.Preemptions, Backfills: t.Backfills,
			})
		}
	})
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) getMetrics(w http.ResponseWriter, r *http.Request) {
	if s.svc.obs == nil {
		http.Error(w, "no registry attached", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.svc.obs.WritePrometheus(w)
}

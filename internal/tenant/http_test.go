package tenant

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"scidp/internal/obs"
)

func TestHTTPControlAPI(t *testing.T) {
	reg := obs.New()
	reg.SetProcess("scidpd")
	env := testEnv(t, 0, reg)
	svc := New(env, Config{})
	ts := httptest.NewServer(NewServer(svc).Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, Job) {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var j Job
		json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		return resp, j
	}

	resp, job := post(`{"tenant":"alice","kind":"grep","size":"small"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", resp.StatusCode)
	}
	if job.ID != 1 {
		t.Fatalf("job id = %d", job.ID)
	}
	// The bridge runs the kernel to quiescence per request: the job's
	// record is already final.
	resp, err := http.Get(ts.URL + "/jobs/1")
	if err != nil {
		t.Fatal(err)
	}
	var done Job
	json.NewDecoder(resp.Body).Decode(&done)
	resp.Body.Close()
	if done.State != StateDone || done.Result == 0 {
		t.Fatalf("GET /jobs/1 = %+v, want done with output", done)
	}

	if resp, _ := post(`{"tenant":"alice","kind":"no-such","size":"small"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad kind -> %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	var views []TenantView
	json.NewDecoder(resp.Body).Decode(&views)
	resp.Body.Close()
	if len(views) != 1 || views[0].Name != "alice" || views[0].Completed != 1 {
		t.Errorf("GET /tenants = %+v", views)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "tenant") {
		t.Errorf("metrics missing tenant series:\n%.400s", metrics)
	}

	if resp, err := http.Get(ts.URL + "/jobs/99"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /jobs/99 = %v %v, want 404", resp.StatusCode, err)
	}
}

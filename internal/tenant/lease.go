package tenant

// Lease is the scheduler's per-job slot grant, implementing
// mapreduce.SlotLease. The MapReduce engine acquires one token per task
// attempt and polls Killed between compute quanta; the scheduler moves
// the grant up and down from tick events (both sides run on the kernel
// thread, so there is no locking). Shrinking the grant below the live
// token count revokes the newest tokens first — the attempts that have
// sunk the least work.
type Lease struct {
	granted int
	next    uint64
	held    []uint64 // live tokens, acquisition order
	killed  map[uint64]bool
	// maxHeld is the high-water mark of concurrently held tokens, for
	// the within-quota audit.
	maxHeld int
}

func newLease() *Lease { return &Lease{killed: map[uint64]bool{}} }

// Available implements mapreduce.SlotLease: a slot is free while the
// held-token count (revoked-but-not-yet-released ones included — they
// still occupy engine slots) is under the grant.
func (l *Lease) Available() bool { return len(l.held) < l.granted }

// Acquire implements mapreduce.SlotLease.
func (l *Lease) Acquire() uint64 {
	l.next++
	l.held = append(l.held, l.next)
	if len(l.held) > l.maxHeld {
		l.maxHeld = len(l.held)
	}
	return l.next
}

// Release implements mapreduce.SlotLease.
func (l *Lease) Release(token uint64) {
	delete(l.killed, token)
	for i, tok := range l.held {
		if tok == token {
			l.held = append(l.held[:i], l.held[i+1:]...)
			return
		}
	}
}

// Killed implements mapreduce.SlotLease.
func (l *Lease) Killed(token uint64) bool { return l.killed[token] }

// Used returns the live token count.
func (l *Lease) Used() int { return len(l.held) }

// Granted returns the current grant.
func (l *Lease) Granted() int { return l.granted }

// setGranted moves the grant to n, revoking the newest surviving tokens
// while more than n remain, and returns how many it revoked.
func (l *Lease) setGranted(n int) (kills int) {
	l.granted = n
	surviving := 0
	for _, tok := range l.held {
		if !l.killed[tok] {
			surviving++
		}
	}
	for i := len(l.held) - 1; i >= 0 && surviving > n; i-- {
		tok := l.held[i]
		if l.killed[tok] {
			continue
		}
		l.killed[tok] = true
		surviving--
		kills++
	}
	return kills
}

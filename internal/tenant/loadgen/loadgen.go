// Package loadgen synthesizes arrival traces for the multi-tenant
// service: per-tenant Poisson processes with an optional diurnal rate
// modulation, merged into one deterministic tenant.Trace.
//
// Determinism: every tenant class draws from its own rand stream seeded
// by (seed, class name), so adding a class or changing one class's
// parameters never perturbs another class's arrivals. The merged trace
// is sorted by (time, tenant, index) with a stable tie-break, so the
// same TraceSpec always yields a byte-identical trace.
package loadgen

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"scidp/internal/tenant"
)

// Class describes one tenant's offered load.
type Class struct {
	// Name is the tenant id.
	Name string
	// Quota installed for the tenant.
	Quota tenant.Quota
	// Rate is the mean arrival rate in jobs per second (the Poisson
	// intensity before diurnal modulation).
	Rate float64
	// Diurnal in [0,1) modulates the rate sinusoidally:
	// lambda(t) = Rate * (1 + Diurnal*sin(2*pi*t/Period)).
	// Zero means a homogeneous Poisson process.
	Diurnal float64
	// Period is the diurnal cycle length in seconds (default: the
	// trace horizon, one full cycle).
	Period float64
	// Kinds to draw uniformly from (default: grep, sort, write).
	Kinds []string
	// Sizes to draw uniformly from (default: small).
	Sizes []string
	// Priority for every job of this class.
	Priority int
}

// TraceSpec is a full synthesis request.
type TraceSpec struct {
	// Name labels the generated trace.
	Name string
	// Seed roots every per-class rand stream.
	Seed int64
	// Horizon is the arrival window in virtual seconds; no arrival is
	// generated at or beyond it.
	Horizon float64
	// Classes are the tenant load classes.
	Classes []Class
}

// Generate synthesizes the trace. Arrivals from each class are drawn by
// thinning a homogeneous Poisson process at the class's peak rate, so
// diurnal classes stay exact Poisson processes with time-varying
// intensity.
func Generate(spec TraceSpec) (*tenant.Trace, error) {
	if spec.Horizon <= 0 {
		return nil, fmt.Errorf("loadgen: horizon must be positive, got %g", spec.Horizon)
	}
	tr := &tenant.Trace{Name: spec.Name, Quotas: map[string]tenant.Quota{}}
	for _, c := range spec.Classes {
		if c.Name == "" {
			return nil, fmt.Errorf("loadgen: class with empty name")
		}
		if _, dup := tr.Quotas[c.Name]; dup {
			return nil, fmt.Errorf("loadgen: duplicate class %q", c.Name)
		}
		if c.Rate <= 0 {
			return nil, fmt.Errorf("loadgen: class %q: rate must be positive, got %g", c.Name, c.Rate)
		}
		if c.Diurnal < 0 || c.Diurnal >= 1 {
			return nil, fmt.Errorf("loadgen: class %q: diurnal must be in [0,1), got %g", c.Name, c.Diurnal)
		}
		tr.Quotas[c.Name] = c.Quota
		tr.Arrivals = append(tr.Arrivals, classArrivals(spec, c)...)
	}
	// Stable merge: time, then tenant name breaks exact ties so the
	// order never depends on map iteration or class declaration order.
	sort.SliceStable(tr.Arrivals, func(i, j int) bool {
		a, b := tr.Arrivals[i], tr.Arrivals[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Spec.Tenant < b.Spec.Tenant
	})
	return tr, nil
}

// classSeed derives a per-class seed so streams are independent.
func classSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

func classArrivals(spec TraceSpec, c Class) []tenant.Arrival {
	rng := rand.New(rand.NewSource(classSeed(spec.Seed, c.Name)))
	kinds := c.Kinds
	if len(kinds) == 0 {
		kinds = []string{"grep", "sort", "write"}
	}
	sizes := c.Sizes
	if len(sizes) == 0 {
		sizes = []string{"small"}
	}
	period := c.Period
	if period <= 0 {
		period = spec.Horizon
	}
	// Thinning: draw at the peak rate, keep each point with probability
	// lambda(t)/peak.
	peak := c.Rate * (1 + c.Diurnal)
	var out []tenant.Arrival
	t := 0.0
	for {
		t += rng.ExpFloat64() / peak
		if t >= spec.Horizon {
			return out
		}
		if c.Diurnal > 0 {
			lambda := c.Rate * (1 + c.Diurnal*math.Sin(2*math.Pi*t/period))
			if rng.Float64()*peak > lambda {
				continue
			}
		}
		out = append(out, tenant.Arrival{
			At: t,
			Spec: tenant.JobSpec{
				Tenant:   c.Name,
				Kind:     kinds[rng.Intn(len(kinds))],
				Size:     sizes[rng.Intn(len(sizes))],
				Priority: c.Priority,
			},
		})
	}
}

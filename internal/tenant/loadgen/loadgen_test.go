package loadgen

import (
	"encoding/json"
	"math"
	"testing"

	"scidp/internal/tenant"
)

func spec() TraceSpec {
	return TraceSpec{
		Name:    "gen-test",
		Seed:    42,
		Horizon: 1000,
		Classes: []Class{
			{Name: "inter", Rate: 0.05, Kinds: []string{"grep"},
				Quota: tenant.Quota{MaxRunning: 2, Weight: 2}},
			{Name: "batch", Rate: 0.02, Diurnal: 0.8,
				Kinds: []string{"sort"}, Sizes: []string{"medium"},
				Quota: tenant.Quota{MaxRunning: 1}},
		},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(spec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec())
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("same spec produced different traces")
	}
	if len(a.Arrivals) == 0 {
		t.Fatal("empty trace")
	}
}

func TestGenerateSortedAndInHorizon(t *testing.T) {
	tr, err := Generate(spec())
	if err != nil {
		t.Fatal(err)
	}
	last := 0.0
	for i, a := range tr.Arrivals {
		if a.At < last {
			t.Fatalf("arrival %d out of order: %g after %g", i, a.At, last)
		}
		if a.At >= 1000 {
			t.Fatalf("arrival %d beyond horizon: %g", i, a.At)
		}
		last = a.At
	}
	if len(tr.Quotas) != 2 {
		t.Fatalf("quotas = %v", tr.Quotas)
	}
}

// TestPerClassStreamIsolation: changing one class's rate must not move
// the other class's arrivals.
func TestPerClassStreamIsolation(t *testing.T) {
	pick := func(tr *tenant.Trace, name string) []float64 {
		var out []float64
		for _, a := range tr.Arrivals {
			if a.Spec.Tenant == name {
				out = append(out, a.At)
			}
		}
		return out
	}
	base, _ := Generate(spec())
	s := spec()
	s.Classes[1].Rate = 0.08 // perturb batch only
	bumped, _ := Generate(s)
	a, b := pick(base, "inter"), pick(bumped, "inter")
	if len(a) != len(b) {
		t.Fatalf("inter arrivals changed count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("inter arrival %d moved: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestPoissonRateRoughlyHonored: a long homogeneous stream should land
// near Rate*Horizon arrivals (within 4 sigma).
func TestPoissonRateRoughlyHonored(t *testing.T) {
	s := TraceSpec{Seed: 7, Horizon: 10000,
		Classes: []Class{{Name: "t", Rate: 0.1, Quota: tenant.Quota{}}}}
	tr, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Classes[0].Rate * s.Horizon
	got := float64(len(tr.Arrivals))
	if sigma := math.Sqrt(want); math.Abs(got-want) > 4*sigma {
		t.Fatalf("arrivals = %g, want ~%g (±%g)", got, want, 4*sigma)
	}
}

// TestDiurnalThinsOffPeak: with strong modulation the first half-cycle
// (rate above mean) must carry more arrivals than the second.
func TestDiurnalThinsOffPeak(t *testing.T) {
	s := TraceSpec{Seed: 3, Horizon: 10000,
		Classes: []Class{{Name: "d", Rate: 0.1, Diurnal: 0.9, Period: 10000}}}
	tr, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	firstHalf := 0
	for _, a := range tr.Arrivals {
		if a.At < 5000 {
			firstHalf++
		}
	}
	secondHalf := len(tr.Arrivals) - firstHalf
	if firstHalf <= secondHalf {
		t.Fatalf("diurnal peak not honored: %d on-peak vs %d off-peak", firstHalf, secondHalf)
	}
}

func TestGenerateValidation(t *testing.T) {
	for _, bad := range []TraceSpec{
		{Horizon: 0},
		{Horizon: 10, Classes: []Class{{Name: "", Rate: 1}}},
		{Horizon: 10, Classes: []Class{{Name: "a", Rate: 0}}},
		{Horizon: 10, Classes: []Class{{Name: "a", Rate: 1, Diurnal: 1.5}}},
		{Horizon: 10, Classes: []Class{{Name: "a", Rate: 1}, {Name: "a", Rate: 1}}},
	} {
		if _, err := Generate(bad); err == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}
}

package tenant

import (
	"fmt"

	"scidp/internal/obs"
	"scidp/internal/sim"
)

// armTick schedules the next scheduler pass unless one is already
// pending. The tick re-arms itself while queued or running jobs exist
// and lapses otherwise, so a drained service leaves the kernel's event
// queue empty and Kernel.Run returns.
func (s *Service) armTick() {
	if s.tickArmed {
		return
	}
	s.tickArmed = true
	s.env.K.After(s.cfg.Tick, s.tick)
}

// tick is one scheduler pass, run as a kernel event: start queued jobs
// the quotas allow, backfill small jobs into idle slots, then re-divide
// the cluster's slots across what runs (revoking from shrunk grants —
// preemption) and publish the gauges.
func (s *Service) tick() {
	s.tickArmed = false
	s.startJobs()
	s.allocate()
	s.publish()
	if len(s.fifo) > 0 || len(s.running) > 0 {
		s.armTick()
	}
}

// startJobs promotes queued jobs to running. Fair-share mode
// round-robins over tenants (sorted names) taking each queue's head
// while the tenant is under MaxRunning and the service under
// MaxConcurrent, then backfills: when concurrency is capped but the
// running set's total demand leaves cluster slots idle, small jobs
// (demand <= BackfillTasks) may start beyond MaxConcurrent. FIFO mode
// is the strict baseline: global arrival order, head-of-line — a
// blocked head blocks everyone behind it.
func (s *Service) startJobs() {
	if s.cfg.FIFO {
		for len(s.fifo) > 0 && len(s.running) < s.cfg.MaxConcurrent {
			j := s.fifo[0]
			t := s.tenants[j.Spec.Tenant]
			if len(t.running) >= t.Quota.MaxRunning {
				return // head-of-line blocking, by design
			}
			s.start(t, j, false)
		}
		return
	}
	for progress := true; progress; {
		progress = false
		for _, name := range s.names {
			if len(s.running) >= s.cfg.MaxConcurrent {
				break
			}
			t := s.tenants[name]
			if len(t.queue) == 0 || len(t.running) >= t.Quota.MaxRunning {
				continue
			}
			s.start(t, t.queue[0], false)
			progress = true
		}
	}
	if s.cfg.NoBackfill {
		return
	}
	idle := s.totalSlots
	for _, j := range s.running {
		idle -= j.Tasks
	}
	for idle > 0 {
		started := false
		for _, name := range s.names {
			t := s.tenants[name]
			if len(t.running) >= t.Quota.MaxRunning {
				continue
			}
			for _, j := range t.queue {
				if j.Tasks > s.cfg.BackfillTasks || j.Tasks > idle {
					continue
				}
				s.start(t, j, true)
				idle -= j.Tasks
				started = true
				break
			}
			if started {
				break
			}
		}
		if !started {
			return
		}
	}
}

// start promotes one queued job: removes it from both queues, attaches
// a fresh lease (granted by the allocation pass that follows within the
// same tick), and spawns the driver process that runs the catalog job.
func (s *Service) start(t *Tenant, j *Job, backfill bool) {
	s.dequeue(t, j)
	j.State = StateRunning
	j.StartAt = s.env.K.Now()
	j.lease = newLease()
	t.running = append(t.running, j)
	s.running = append(s.running, j)
	if len(t.running) > t.MaxRunningSeen {
		t.MaxRunningSeen = len(t.running)
	}
	if backfill {
		t.Backfills++
		s.counter("tenant/backfill_starts_total", t.Name).Inc()
	}
	s.env.K.Go(fmt.Sprintf("scidpd/job-%04d", j.ID), func(p *sim.Proc) {
		err := s.runJob(p, j)
		s.finish(j, err)
	})
}

func (s *Service) dequeue(t *Tenant, j *Job) {
	for i, q := range t.queue {
		if q == j {
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			break
		}
	}
	for i, q := range s.fifo {
		if q == j {
			s.fifo = append(s.fifo[:i], s.fifo[i+1:]...)
			break
		}
	}
}

// finish records a driver's outcome; it runs in the driver's process
// context just before the process exits.
func (s *Service) finish(j *Job, err error) {
	t := s.tenants[j.Spec.Tenant]
	j.DoneAt = s.env.K.Now()
	if err != nil {
		j.State = StateFailed
		j.Error = err.Error()
		t.Failed++
		s.counter("tenant/jobs_failed_total", t.Name).Inc()
	} else {
		j.State = StateDone
		t.Completed++
		s.counter("tenant/jobs_completed_total", t.Name).Inc()
		s.obs.Histogram("tenant/job_latency_seconds", latencyBuckets,
			obs.L("tenant", t.Name)).Observe(j.Latency())
	}
	s.completions = append(s.completions, j.ID)
	for i, r := range t.running {
		if r == j {
			t.running = append(t.running[:i], t.running[i+1:]...)
			break
		}
	}
	for i, r := range s.running {
		if r == j {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
}

// allocate divides the cluster's slots across the running jobs.
//
// FIFO mode grants full demand in arrival order until the slots run
// out. Fair-share mode is two-level: every running job is first
// guaranteed one slot (MaxConcurrent is clamped to the slot count, so
// this always fits), then the remaining slots go to tenants one at a
// time by highest weight/(granted+1) — the D'Hondt rule, deterministic
// with ties broken by tenant name — skipping tenants already at their
// demand or SlotShare cap; within a tenant, slots fill jobs in start
// order up to each job's demand. Shrunk grants revoke their newest
// task attempts, which the engine requeues (preemption).
func (s *Service) allocate() {
	grants := make(map[*Job]int, len(s.running))
	if s.cfg.FIFO {
		left := s.totalSlots
		for _, j := range s.running {
			g := min(j.Tasks, left)
			grants[j] = g
			left -= g
		}
	} else {
		type share struct {
			t       *Tenant
			jobs    []*Job
			granted int
			cap     int
			demand  int
		}
		var shares []*share
		left := s.totalSlots
		for _, name := range s.names {
			t := s.tenants[name]
			if len(t.running) == 0 {
				continue
			}
			sh := &share{t: t, jobs: t.running, cap: t.Quota.slotCap(s.totalSlots)}
			for _, j := range sh.jobs {
				sh.demand += j.Tasks
				// The one-slot floor keeps every admitted job moving,
				// inside the tenant's cap.
				if left > 0 && sh.granted < sh.cap {
					sh.granted++
					left--
				}
			}
			shares = append(shares, sh)
		}
		for left > 0 {
			var best *share
			var bestKey float64
			for _, sh := range shares {
				if sh.granted >= sh.demand || sh.granted >= sh.cap {
					continue
				}
				key := sh.t.Quota.Weight / float64(sh.granted+1)
				if best == nil || key > bestKey {
					best, bestKey = sh, key
				}
			}
			if best == nil {
				break
			}
			best.granted++
			left--
		}
		// Second level: a tenant's slots fill its jobs in start order —
		// one slot each first (the floor), then up to each demand.
		for _, sh := range shares {
			left := sh.granted
			floor := min(len(sh.jobs), left)
			left -= floor // reserve one slot per floored job
			for i, j := range sh.jobs {
				g := 0
				if i < floor {
					g = 1
				}
				extra := min(j.Tasks-g, left)
				g += extra
				left -= extra
				grants[j] = g
			}
		}
	}
	for _, j := range s.running {
		t := s.tenants[j.Spec.Tenant]
		kills := j.lease.setGranted(grants[j])
		if kills > 0 {
			t.Preemptions += kills
			s.counter("tenant/preemptions_total", t.Name).Add(float64(kills))
		}
	}
	// Per-tenant granted totals, for gauges and the quota audit.
	for _, name := range s.names {
		t := s.tenants[name]
		total := 0
		for _, j := range t.running {
			total += j.lease.Granted()
		}
		if total > t.MaxGrantedSeen {
			t.MaxGrantedSeen = total
		}
		s.obs.Gauge("tenant/slots_granted", obs.L("tenant", name)).Set(float64(total))
	}
}

// publish refreshes the queue-depth and running-job gauges.
func (s *Service) publish() {
	for _, name := range s.names {
		t := s.tenants[name]
		s.obs.Gauge("tenant/queue_depth", obs.L("tenant", name)).Set(float64(len(t.queue)))
		s.obs.Gauge("tenant/running_jobs", obs.L("tenant", name)).Set(float64(len(t.running)))
	}
}

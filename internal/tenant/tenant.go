// Package tenant is the multi-tenant job service layered over the
// simulated SciDP testbed: tenants submit jobs (workload kind, input
// size, priority) into per-tenant queues, an admission controller
// enforces per-tenant quotas (queue depth, running jobs, cluster slot
// share), and a two-level scheduler divides the cluster's task slots
// across tenants by weighted fair share — revoking slots from running
// jobs when the division shifts (preemption, via the MapReduce engine's
// SlotLease hooks and task re-execution machinery) and starting small
// jobs into otherwise idle slots (backfill).
//
// Everything runs on the deterministic virtual-time kernel: arrivals,
// scheduler ticks, task preemptions, and completions are all kernel
// events, so the same arrival trace replays to byte-identical job
// outcomes, outputs, and observability exports at any ComputePool
// worker count, with or without a chaos plan armed.
package tenant

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"scidp/internal/obs"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

// JobSpec is what a tenant submits.
type JobSpec struct {
	// Tenant names the submitting tenant; unknown tenants are created
	// on first use with the service's default quota.
	Tenant string `json:"tenant"`
	// Kind selects the workload: "grep", "sort", or "write".
	Kind string `json:"kind"`
	// Size selects the input scale: "small", "medium", or "large".
	Size string `json:"size"`
	// Priority orders jobs within a tenant's queue (higher first;
	// equal priorities keep arrival order).
	Priority int `json:"priority,omitempty"`
}

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle states.
const (
	// StateQueued: admitted, waiting for the scheduler.
	StateQueued JobState = "queued"
	// StateRejected: refused at admission (tenant queue full).
	StateRejected JobState = "rejected"
	// StateRunning: started on the cluster.
	StateRunning JobState = "running"
	// StateDone: completed successfully.
	StateDone JobState = "done"
	// StateFailed: the underlying MapReduce job errored out.
	StateFailed JobState = "failed"
)

// Job is one submitted job's record.
type Job struct {
	// ID is the submission sequence number (1-based).
	ID int `json:"id"`
	// Spec is what was submitted.
	Spec JobSpec `json:"spec"`
	// State is the lifecycle position.
	State JobState `json:"state"`
	// Tasks is the job's slot demand: map tasks plus reducers.
	Tasks int `json:"tasks"`
	// SubmitAt / StartAt / DoneAt are virtual times (zero until set).
	SubmitAt float64 `json:"submit_at"`
	StartAt  float64 `json:"start_at,omitempty"`
	DoneAt   float64 `json:"done_at,omitempty"`
	// Result is the workload's scalar output (match count, checksum).
	Result int64 `json:"result,omitempty"`
	// OutputBytes is what the job wrote to HDFS.
	OutputBytes int64 `json:"output_bytes,omitempty"`
	// Error holds the failure message for StateFailed.
	Error string `json:"error,omitempty"`

	lease *Lease
}

// Latency returns the job's sojourn time (submit to done); zero until
// the job completes.
func (j *Job) Latency() float64 {
	if j.DoneAt == 0 {
		return 0
	}
	return j.DoneAt - j.SubmitAt
}

// Quota bounds one tenant's resource footprint.
type Quota struct {
	// MaxQueued bounds the tenant's admitted-but-not-started jobs;
	// submissions beyond it are rejected (default 32).
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxRunning bounds the tenant's concurrently running jobs
	// (default 2).
	MaxRunning int `json:"max_running,omitempty"`
	// SlotShare caps the tenant's fraction of the cluster's task slots,
	// 0 < share <= 1 (default 1 = no cap).
	SlotShare float64 `json:"slot_share,omitempty"`
	// Weight is the tenant's fair-share weight (default 1).
	Weight float64 `json:"weight,omitempty"`
}

func (q Quota) withDefaults() Quota {
	if q.MaxQueued <= 0 {
		q.MaxQueued = 32
	}
	if q.MaxRunning <= 0 {
		q.MaxRunning = 2
	}
	if q.SlotShare <= 0 || q.SlotShare > 1 {
		q.SlotShare = 1
	}
	if q.Weight <= 0 {
		q.Weight = 1
	}
	return q
}

// slotCap is the tenant's slot ceiling on a cluster of total slots.
func (q Quota) slotCap(total int) int {
	cap := int(q.SlotShare * float64(total))
	if cap < 1 {
		cap = 1
	}
	if cap > total {
		cap = total
	}
	return cap
}

// Tenant is one tenant's live state.
type Tenant struct {
	// Name identifies the tenant.
	Name string
	// Quota is the tenant's admission and share limits.
	Quota Quota

	queue   []*Job // admitted, waiting; priority desc, then arrival
	running []*Job // started, not yet finished; arrival order

	// Counters for summaries (the obs registry mirrors them).
	Submitted, Rejected, Completed, Failed int
	Preemptions, Backfills                 int
	// MaxRunningSeen / MaxGrantedSeen are high-water marks for the
	// within-quota audit: concurrently running jobs, and slots granted
	// across the tenant's jobs at any one tick.
	MaxRunningSeen, MaxGrantedSeen int
}

// Config sizes the service.
type Config struct {
	// Tick is the scheduler period in virtual seconds (default 0.5).
	Tick float64
	// MaxConcurrent bounds globally running jobs, keeping each one's
	// slot grant meaningful; it is clamped to the cluster's total slot
	// count so every running job can hold at least one slot
	// (default 4).
	MaxConcurrent int
	// FIFO switches the scheduler to the strict arrival-order baseline:
	// no fair share, no backfill, no preemption — jobs start head-of-
	// line and hold their full demand until done. The contrast case for
	// the mt experiment.
	FIFO bool
	// NoBackfill disables backfill in fair-share mode (ablation).
	NoBackfill bool
	// BackfillTasks is the largest job demand (tasks) backfill may
	// start into idle slots (default 3).
	BackfillTasks int
	// DefaultQuota applies to tenants created on first submission.
	DefaultQuota Quota
	// InputFiles is the shared read-only input pool size installed at
	// service start; job sizes index into it (default 12).
	InputFiles int
	// FileBytes sizes each input file (default 256 KiB).
	FileBytes int64
	// ScanPerMB is the modeled map CPU per MB scanned (default 2.0).
	ScanPerMB float64
	// TaskStartup is the per-task launch cost (default 0.3).
	TaskStartup float64
	// Reducers is the reduce-task count for shuffling kinds
	// (default 2).
	Reducers int
}

func (c Config) withDefaults(totalSlots int) Config {
	if c.Tick <= 0 {
		c.Tick = 0.5
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxConcurrent > totalSlots {
		c.MaxConcurrent = totalSlots
	}
	if c.BackfillTasks <= 0 {
		c.BackfillTasks = 3
	}
	c.DefaultQuota = c.DefaultQuota.withDefaults()
	if c.InputFiles <= 0 {
		c.InputFiles = 12
	}
	if c.FileBytes <= 0 {
		c.FileBytes = 256 << 10
	}
	if c.ScanPerMB <= 0 {
		c.ScanPerMB = 2.0
	}
	if c.TaskStartup <= 0 {
		c.TaskStartup = 0.3
	}
	if c.Reducers <= 0 {
		c.Reducers = 2
	}
	return c
}

// Service is the job service: admission, queues, scheduler, and the
// catalog runner. All methods must be called from kernel context (an
// event callback or a simulated process); the HTTP server bridges real
// goroutines onto the kernel before touching it.
type Service struct {
	env *solutions.Env
	cfg Config
	obs *obs.Registry
	be  *workloads.HDFSBackend

	inputs     []string // shared read-only input files
	totalSlots int

	tenants map[string]*Tenant
	names   []string // sorted tenant names
	jobs    []*Job   // all submissions, by ID
	fifo    []*Job   // queued jobs in global arrival order
	running []*Job   // running jobs in start order

	completions []int // job IDs in completion order
	tickArmed   bool
}

// New builds the service over an existing testbed env and installs the
// shared input pool. The env's registry (when attached) receives the
// service's metrics; its chaos injector and MaxAttempts apply to every
// job.
func New(env *solutions.Env, cfg Config) *Service {
	if env.Closed() {
		panic("tenant: New on closed Env")
	}
	totalSlots := len(env.BD.Nodes) * env.Cfg.SlotsPerNode
	s := &Service{
		env:        env,
		cfg:        cfg.withDefaults(totalSlots),
		obs:        env.Obs,
		be:         &workloads.HDFSBackend{FS: env.HDFS, Tier: env.Tier},
		totalSlots: totalSlots,
		tenants:    map[string]*Tenant{},
	}
	s.installInputs()
	return s
}

// Env returns the testbed the service runs over.
func (s *Service) Env() *solutions.Env { return s.env }

// TotalSlots returns the cluster's schedulable slot count.
func (s *Service) TotalSlots() int { return s.totalSlots }

// SetQuota installs (or replaces) a tenant's quota, creating the tenant
// if needed.
func (s *Service) SetQuota(name string, q Quota) {
	s.tenant(name).Quota = q.withDefaults()
}

func (s *Service) tenant(name string) *Tenant {
	if t, ok := s.tenants[name]; ok {
		return t
	}
	t := &Tenant{Name: name, Quota: s.cfg.DefaultQuota}
	s.tenants[name] = t
	s.names = append(s.names, name)
	sort.Strings(s.names)
	return t
}

// Submit admits one job. Admission rejects (rather than queues) when
// the tenant's queue is at MaxQueued; the returned job is then already
// in StateRejected. Must run in kernel context.
func (s *Service) Submit(spec JobSpec) (*Job, error) {
	tasks, err := s.demand(spec)
	if err != nil {
		return nil, err
	}
	t := s.tenant(spec.Tenant)
	j := &Job{
		ID:       len(s.jobs) + 1,
		Spec:     spec,
		Tasks:    tasks,
		SubmitAt: s.env.K.Now(),
	}
	s.jobs = append(s.jobs, j)
	t.Submitted++
	s.counter("tenant/jobs_submitted_total", spec.Tenant).Inc()
	if len(t.queue) >= t.Quota.MaxQueued {
		j.State = StateRejected
		t.Rejected++
		s.counter("tenant/jobs_rejected_total", spec.Tenant).Inc()
		return j, nil
	}
	j.State = StateQueued
	s.enqueue(t, j)
	s.fifo = append(s.fifo, j)
	s.armTick()
	return j, nil
}

// enqueue inserts j into the tenant queue: priority descending, arrival
// order within a priority.
func (s *Service) enqueue(t *Tenant, j *Job) {
	at := len(t.queue)
	for at > 0 && t.queue[at-1].Spec.Priority < j.Spec.Priority {
		at--
	}
	t.queue = append(t.queue, nil)
	copy(t.queue[at+1:], t.queue[at:])
	t.queue[at] = j
}

// Job returns a submission by ID (nil when unknown).
func (s *Service) Job(id int) *Job {
	if id < 1 || id > len(s.jobs) {
		return nil
	}
	return s.jobs[id-1]
}

// Jobs returns every submission in ID order (the live slice: callers
// outside kernel context must not hold it across kernel runs).
func (s *Service) Jobs() []*Job { return s.jobs }

// TenantNames returns the sorted tenant names.
func (s *Service) TenantNames() []string { return s.names }

// TenantState returns one tenant's live record (nil when unknown).
func (s *Service) TenantState(name string) *Tenant { return s.tenants[name] }

// QueueDepth returns a tenant's waiting-job count.
func (t *Tenant) QueueDepth() int { return len(t.queue) }

// RunningJobs returns a tenant's running-job count.
func (t *Tenant) RunningJobs() int { return len(t.running) }

// Completions returns job IDs in completion order.
func (s *Service) Completions() []int { return s.completions }

// Quiesced reports whether no queued or running jobs remain.
func (s *Service) Quiesced() bool {
	return len(s.fifo) == 0 && len(s.running) == 0 && !s.tickArmed
}

// Digest hashes every job's full outcome record plus the completion
// order — the determinism contract's "byte-identical schedule and
// outputs" in one string.
func (s *Service) Digest() string {
	h := sha256.New()
	for _, j := range s.jobs {
		fmt.Fprintf(h, "job %d %s %s %s p%d %s tasks=%d submit=%.9f start=%.9f done=%.9f result=%d out=%d err=%q\n",
			j.ID, j.Spec.Tenant, j.Spec.Kind, j.Spec.Size, j.Spec.Priority,
			j.State, j.Tasks, j.SubmitAt, j.StartAt, j.DoneAt, j.Result, j.OutputBytes, j.Error)
	}
	fmt.Fprintf(h, "completions %v\n", s.completions)
	for _, name := range s.names {
		t := s.tenants[name]
		fmt.Fprintf(h, "tenant %s sub=%d rej=%d done=%d fail=%d preempt=%d backfill=%d maxrun=%d maxslots=%d\n",
			name, t.Submitted, t.Rejected, t.Completed, t.Failed,
			t.Preemptions, t.Backfills, t.MaxRunningSeen, t.MaxGrantedSeen)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// WithinQuota audits the run: every tenant's high-water marks must be
// inside its quota. The FIFO baseline grants each job its full demand
// regardless of slot shares (that is the point of the baseline), so the
// slot-cap check applies only to the fair-share scheduler.
func (s *Service) WithinQuota() bool {
	for _, name := range s.names {
		t := s.tenants[name]
		if t.MaxRunningSeen > t.Quota.MaxRunning {
			return false
		}
		if !s.cfg.FIFO && t.MaxGrantedSeen > t.Quota.slotCap(s.totalSlots) {
			return false
		}
	}
	return true
}

func (s *Service) counter(name, tenant string) *obs.Counter {
	return s.obs.Counter(name, obs.L("tenant", tenant))
}

// latencyBuckets spans job sojourn times from 1 s to ~9 virtual hours.
var latencyBuckets = obs.ExpBuckets(1, 2, 16)

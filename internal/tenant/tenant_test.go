package tenant

import (
	"strings"
	"testing"

	"scidp/internal/obs"
	"scidp/internal/solutions"
)

func testEnv(t *testing.T, workers int, reg *obs.Registry) *solutions.Env {
	t.Helper()
	env := solutions.NewEnv(solutions.EnvConfig{
		Nodes: 4, SlotsPerNode: 2, ByteScale: 1,
		Obs: reg, Workers: workers,
	})
	t.Cleanup(env.Close)
	return env
}

// smallTrace mixes three tenants over ~30 virtual seconds: a batch
// tenant submitting large jobs and an interactive tenant streaming
// small ones.
func smallTrace() *Trace {
	tr := &Trace{
		Name: "unit-small",
		Quotas: map[string]Quota{
			"batch": {MaxRunning: 2, Weight: 1},
			"inter": {MaxRunning: 2, Weight: 2},
		},
	}
	add := func(at float64, tenant, kind, size string) {
		tr.Arrivals = append(tr.Arrivals, Arrival{At: at,
			Spec: JobSpec{Tenant: tenant, Kind: kind, Size: size}})
	}
	add(0.1, "batch", "sort", "large")
	add(0.2, "batch", "grep", "large")
	add(1.0, "inter", "grep", "small")
	add(2.0, "inter", "grep", "small")
	add(3.0, "inter", "write", "small")
	add(5.0, "batch", "write", "medium")
	add(6.0, "inter", "grep", "small")
	add(8.0, "inter", "sort", "small")
	return tr
}

func TestReplayCompletesAll(t *testing.T) {
	reg := obs.New()
	reg.SetProcess("scidpd")
	env := testEnv(t, 0, reg)
	svc := New(env, Config{})
	sum, err := Replay(svc, smallTrace())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != 8 || sum.Completed != 8 {
		t.Fatalf("jobs=%d completed=%d rejected=%d failed=%d, want all 8 done",
			sum.Jobs, sum.Completed, sum.Rejected, sum.Failed)
	}
	if !sum.WithinQuota {
		t.Error("run exceeded a tenant quota")
	}
	if sum.MakespanSeconds <= 0 || sum.P99Seconds < sum.P50Seconds {
		t.Errorf("bad summary: makespan=%.2f p50=%.2f p99=%.2f",
			sum.MakespanSeconds, sum.P50Seconds, sum.P99Seconds)
	}
	if !svc.Quiesced() {
		t.Error("service not quiesced after replay")
	}
	// Every completed job left output in its own namespace.
	for _, j := range svc.Jobs() {
		if j.Spec.Kind == "grep" && j.Result == 0 {
			t.Errorf("job %d: grep counted nothing", j.ID)
		}
		if !strings.HasPrefix(svc.outDir(j), "/tenant/"+j.Spec.Tenant+"/") {
			t.Errorf("job %d: bad namespace %s", j.ID, svc.outDir(j))
		}
	}
}

func TestAdmissionRejectsOverflow(t *testing.T) {
	env := testEnv(t, 0, nil)
	svc := New(env, Config{DefaultQuota: Quota{MaxQueued: 2, MaxRunning: 1}})
	tr := &Trace{Name: "flood"}
	for i := 0; i < 8; i++ {
		tr.Arrivals = append(tr.Arrivals, Arrival{At: 0.1,
			Spec: JobSpec{Tenant: "t0", Kind: "grep", Size: "large"}})
	}
	sum, err := Replay(svc, tr)
	if err != nil {
		t.Fatal(err)
	}
	// One running + two queued admitted at most in the first burst; the
	// rest must be rejected at admission, not silently queued.
	if sum.Rejected == 0 {
		t.Fatalf("no rejections: %+v", sum)
	}
	if sum.Completed+sum.Rejected != sum.Jobs {
		t.Errorf("jobs=%d completed=%d rejected=%d failed=%d",
			sum.Jobs, sum.Completed, sum.Rejected, sum.Failed)
	}
	if !sum.WithinQuota {
		t.Error("run exceeded a tenant quota")
	}
}

func TestUnknownSpecRejected(t *testing.T) {
	env := testEnv(t, 0, nil)
	svc := New(env, Config{})
	var err error
	env.K.After(0, func() {
		_, err = svc.Submit(JobSpec{Tenant: "t", Kind: "mine-bitcoin", Size: "small"})
	})
	env.K.Run()
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	env.K.After(0, func() {
		_, err = svc.Submit(JobSpec{Tenant: "t", Kind: "grep", Size: "galactic"})
	})
	env.K.Run()
	if err == nil {
		t.Fatal("unknown size accepted")
	}
}

// TestPreemptionOnArrival starts a slot-hogging batch job alone, then
// lands a burst of interactive jobs: the fair-share re-division must
// revoke slots from the hog (preemptions counted) and every job must
// still finish correctly.
func TestPreemptionOnArrival(t *testing.T) {
	reg := obs.New()
	reg.SetProcess("scidpd")
	env := testEnv(t, 0, reg)
	svc := New(env, Config{ScanPerMB: 40})
	tr := &Trace{
		Name: "preempt",
		Quotas: map[string]Quota{
			"hog":   {MaxRunning: 1, Weight: 1},
			"burst": {MaxRunning: 4, Weight: 4},
		},
	}
	tr.Arrivals = append(tr.Arrivals,
		Arrival{At: 0.1, Spec: JobSpec{Tenant: "hog", Kind: "grep", Size: "large"}},
		// Arrive once the hog holds the whole cluster.
		Arrival{At: 4.0, Spec: JobSpec{Tenant: "burst", Kind: "grep", Size: "small"}},
		Arrival{At: 4.1, Spec: JobSpec{Tenant: "burst", Kind: "grep", Size: "small"}},
		Arrival{At: 4.2, Spec: JobSpec{Tenant: "burst", Kind: "grep", Size: "small"}},
	)
	sum, err := Replay(svc, tr)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 4 {
		t.Fatalf("completed=%d of %d (failed=%d)", sum.Completed, sum.Jobs, sum.Failed)
	}
	if sum.Preemptions == 0 {
		t.Error("burst arrival preempted nothing")
	}
	if got := reg.Counter("mr/tasks_preempted_total", obs.L("phase", "map")).Value(); got == 0 {
		t.Error("engine preemption counter still zero")
	}
	if !sum.WithinQuota {
		t.Error("run exceeded a tenant quota")
	}
}

// TestBackfillStartsSmallJobs floods with one huge-queue tenant and a
// small-job tenant under a FIFO-blocking arrival order; fair-share +
// backfill must start small jobs into idle slots.
func TestBackfillStartsSmallJobs(t *testing.T) {
	env := testEnv(t, 0, nil)
	svc := New(env, Config{MaxConcurrent: 2})
	tr := &Trace{
		Name: "backfill",
		Quotas: map[string]Quota{
			"big":   {MaxRunning: 2},
			"small": {MaxRunning: 4},
		},
	}
	// Two mediums occupy both MaxConcurrent seats with demand 5+5=10 >
	// 8 slots? No: use small cluster demand — two grep mediums demand
	// 2*(4+1)=10, over 8 slots, no idle. Use write/small hogs instead:
	// two sort/small demand 2*(2+2)=8 = slots, so add small grep jobs
	// whose demand 3 can only start via... keep it direct: two
	// grep/small running (demand 6), 2 idle slots, backfill demand-3
	// jobs won't fit but demand-2 write/small will.
	tr.Arrivals = append(tr.Arrivals,
		Arrival{At: 0.1, Spec: JobSpec{Tenant: "big", Kind: "grep", Size: "small"}},
		Arrival{At: 0.1, Spec: JobSpec{Tenant: "big", Kind: "grep", Size: "small"}},
		Arrival{At: 0.2, Spec: JobSpec{Tenant: "small", Kind: "write", Size: "small"}},
		Arrival{At: 0.2, Spec: JobSpec{Tenant: "small", Kind: "write", Size: "small"}},
	)
	sum, err := Replay(svc, tr)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 4 {
		t.Fatalf("completed=%d of %d (failed=%d)", sum.Completed, sum.Jobs, sum.Failed)
	}
	if sum.Backfills == 0 {
		t.Error("no backfill starts despite idle slots and queued small jobs")
	}
	// The FIFO baseline must start zero backfills by construction.
	env2 := testEnv(t, 0, nil)
	svc2 := New(env2, Config{MaxConcurrent: 2, FIFO: true})
	sum2, err := Replay(svc2, tr)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Backfills != 0 {
		t.Errorf("FIFO mode backfilled %d jobs", sum2.Backfills)
	}
	if sum2.Completed != 4 {
		t.Fatalf("fifo completed=%d of %d", sum2.Completed, sum2.Jobs)
	}
}

package tenant

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"scidp/internal/obs"
)

// Arrival is one timed submission in a trace.
type Arrival struct {
	// At is the virtual arrival time in seconds.
	At float64 `json:"at"`
	// Spec is what arrives.
	Spec JobSpec `json:"spec"`
}

// Trace is a replayable arrival schedule: the headless input to scidpd
// -replay and the unit of determinism testing (same trace + same env ⇒
// byte-identical everything).
type Trace struct {
	// Name labels the trace in reports.
	Name string `json:"name,omitempty"`
	// Quotas are installed before any arrival (keyed by tenant).
	Quotas map[string]Quota `json:"quotas,omitempty"`
	// Arrivals must be sorted by At.
	Arrivals []Arrival `json:"arrivals"`
}

// LoadTrace reads a JSON trace from disk.
func LoadTrace(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tr Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("tenant: parse trace %s: %w", path, err)
	}
	return &tr, nil
}

// Replay schedules every arrival onto the service's kernel and runs the
// simulation to quiescence, returning the run's summary. Call once per
// fresh service.
func Replay(s *Service, tr *Trace) (*Summary, error) {
	names := make([]string, 0, len(tr.Quotas))
	for name := range tr.Quotas {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.SetQuota(name, tr.Quotas[name])
	}
	var submitErr error
	for _, a := range tr.Arrivals {
		spec := a.Spec
		s.env.K.After(a.At, func() {
			if _, err := s.Submit(spec); err != nil && submitErr == nil {
				submitErr = err
			}
		})
	}
	s.env.K.Run()
	if submitErr != nil {
		return nil, submitErr
	}
	s.env.ExportSimMetrics()
	return Summarize(s, tr.Name), nil
}

// TenantSummary is one tenant's slice of a Summary.
type TenantSummary struct {
	Tenant      string  `json:"tenant"`
	Submitted   int     `json:"submitted"`
	Completed   int     `json:"completed"`
	Rejected    int     `json:"rejected"`
	Failed      int     `json:"failed"`
	P50Seconds  float64 `json:"p50_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	Preemptions int     `json:"preemptions"`
	Backfills   int     `json:"backfills"`
	MaxRunning  int     `json:"max_running_seen"`
	MaxGranted  int     `json:"max_granted_seen"`
	SlotCap     int     `json:"slot_cap"`
}

// Summary is one replay's outcome: the mt experiment's record and the
// smoke test's contract.
type Summary struct {
	Trace            string          `json:"trace,omitempty"`
	Jobs             int             `json:"jobs"`
	Completed        int             `json:"completed"`
	Rejected         int             `json:"rejected"`
	Failed           int             `json:"failed"`
	MakespanSeconds  float64         `json:"makespan_seconds"`
	P50Seconds       float64         `json:"p50_seconds"`
	P99Seconds       float64         `json:"p99_seconds"`
	GoodputJobsPerKs float64         `json:"goodput_jobs_per_ks"`
	Preemptions      int             `json:"preemptions"`
	Backfills        int             `json:"backfills"`
	WithinQuota      bool            `json:"within_quota"`
	PerTenant        []TenantSummary `json:"per_tenant"`
	CompletionDigest string          `json:"completion_digest"`
	ExportDigest     string          `json:"export_digest,omitempty"`
}

// Summarize computes the run's summary after the kernel has drained.
func Summarize(s *Service, traceName string) *Summary {
	sum := &Summary{
		Trace:            traceName,
		Jobs:             len(s.jobs),
		WithinQuota:      s.WithinQuota(),
		CompletionDigest: s.Digest(),
	}
	var all []float64
	var makespan float64
	for _, j := range s.jobs {
		switch j.State {
		case StateDone:
			sum.Completed++
			all = append(all, j.Latency())
			if j.DoneAt > makespan {
				makespan = j.DoneAt
			}
		case StateRejected:
			sum.Rejected++
		case StateFailed:
			sum.Failed++
			if j.DoneAt > makespan {
				makespan = j.DoneAt
			}
		}
	}
	sum.MakespanSeconds = makespan
	sum.P50Seconds = percentile(all, 0.50)
	sum.P99Seconds = percentile(all, 0.99)
	if makespan > 0 {
		sum.GoodputJobsPerKs = float64(sum.Completed) / makespan * 1000
	}
	for _, name := range s.names {
		t := s.tenants[name]
		var lat []float64
		for _, j := range s.jobs {
			if j.Spec.Tenant == name && j.State == StateDone {
				lat = append(lat, j.Latency())
			}
		}
		sum.Preemptions += t.Preemptions
		sum.Backfills += t.Backfills
		sum.PerTenant = append(sum.PerTenant, TenantSummary{
			Tenant:      name,
			Submitted:   t.Submitted,
			Completed:   t.Completed,
			Rejected:    t.Rejected,
			Failed:      t.Failed,
			P50Seconds:  percentile(lat, 0.50),
			P99Seconds:  percentile(lat, 0.99),
			Preemptions: t.Preemptions,
			Backfills:   t.Backfills,
			MaxRunning:  t.MaxRunningSeen,
			MaxGranted:  t.MaxGrantedSeen,
			SlotCap:     t.Quota.slotCap(s.totalSlots),
		})
	}
	return sum
}

// percentile is the exact order statistic: the ceil(q*n)-th smallest
// value (the analyze plane's convention).
func percentile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	idx := int(float64(len(sorted))*q+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// RegistryDigest hashes a registry's Chrome-trace and Prometheus
// exports — the byte-identical-exports contract in one string. Empty
// for a nil registry.
func RegistryDigest(reg *obs.Registry) string {
	if reg == nil {
		return ""
	}
	h := sha256.New()
	if err := reg.WriteChromeTrace(h); err != nil {
		panic(err)
	}
	if err := reg.WritePrometheus(h); err != nil {
		panic(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

package workloads

import (
	"bytes"
	"fmt"
	"sort"

	"scidp/internal/cluster"
	"scidp/internal/hdfs"
	"scidp/internal/ioengine"
	"scidp/internal/mapreduce"
	"scidp/internal/pfs"
	"scidp/internal/sim"
)

// Backend abstracts the storage under the Figure 2 comparison: native
// HDFS (locality-aware local reads) versus a Lustre connector (every read
// crosses the storage network, the unified-file-system architecture of
// Figure 1(b)).
type Backend interface {
	// Name labels the backend ("hdfs", "lustre").
	Name() string
	// Put installs input data instantly (setup, not measured).
	Put(path string, data []byte)
	// Input builds an input format over the given files; records are
	// ([]byte) chunks.
	Input(paths []string, splitSize int64) mapreduce.InputFormat
	// Write stores a file from the task's node, charging virtual time.
	Write(p *sim.Proc, node *cluster.Node, path string, data []byte) error
	// Read loads a whole file from the task's node, charging time.
	Read(p *sim.Proc, node *cluster.Node, path string) ([]byte, error)
}

// ---- HDFS backend.

// HDFSBackend runs workloads against native HDFS.
type HDFSBackend struct {
	// FS is the file system.
	FS *hdfs.FS
	// Tier, when non-nil, is the cooperative cache tier block reads
	// consult before HDFS — the cross-job/cross-tenant reuse path.
	Tier *ioengine.Tier
}

// Name implements Backend.
func (b *HDFSBackend) Name() string { return "hdfs" }

// Put implements Backend.
func (b *HDFSBackend) Put(path string, data []byte) {
	if _, err := b.FS.Put(path, data); err != nil {
		panic(err)
	}
}

// Write implements Backend.
func (b *HDFSBackend) Write(p *sim.Proc, node *cluster.Node, path string, data []byte) error {
	return b.FS.WriteFile(p, node, path, data)
}

// Read implements Backend.
func (b *HDFSBackend) Read(p *sim.Proc, node *cluster.Node, path string) ([]byte, error) {
	return b.FS.ReadFile(p, node, path)
}

// Input implements Backend: one split per HDFS block, located at its
// replicas so the scheduler reads locally.
func (b *HDFSBackend) Input(paths []string, splitSize int64) mapreduce.InputFormat {
	return &hdfsBlockInput{fs: b.FS, tier: b.Tier, paths: paths}
}

type hdfsBlockInput struct {
	fs    *hdfs.FS
	tier  *ioengine.Tier
	paths []string
}

func (in *hdfsBlockInput) Splits(p *sim.Proc) ([]*mapreduce.Split, error) {
	var out []*mapreduce.Split
	for _, path := range paths(in.paths) {
		n, err := in.fs.Stat(p, path)
		if err != nil {
			return nil, err
		}
		for i, b := range n.Blocks {
			out = append(out, &mapreduce.Split{
				Label:     fmt.Sprintf("%s#%d", path, i),
				Payload:   b,
				Length:    b.Size,
				Locations: hdfs.HostsOf(b),
			})
		}
	}
	return out, nil
}

func (in *hdfsBlockInput) ForEach(tc *mapreduce.TaskContext, s *mapreduce.Split, fn func(key string, value any) error) error {
	var data []byte
	var err error
	key := "hdfs#" + s.Label
	tc.Phase("Read", func() {
		// Tier entries are shared read-only, but workload tasks mutate
		// their block bytes in place (sort), so both directions copy.
		if v, ok := in.tier.Read(tc.Proc(), tc.Node().Name, key); ok {
			data = append([]byte(nil), v...)
			return
		}
		data, err = in.fs.ReadBlock(tc.Proc(), tc.Node(), s.Payload.(*hdfs.Block))
		if err == nil {
			in.tier.MissOST(int64(len(data)))
			in.tier.Admit(tc.Proc(), tc.Node().Name, key,
				append([]byte(nil), data...), int64(len(data)))
		}
	})
	if err != nil {
		return err
	}
	return fn(s.Label, data)
}

// ---- Lustre connector backend.

// LustreBackend runs workloads against a PFS mounted by every Hadoop node
// (the HDFS-connector architecture). MountFor supplies each node's client,
// whose resource path crosses the storage fabric.
type LustreBackend struct {
	// FS is the parallel file system.
	FS *pfs.FS
	// MountFor returns a node's PFS mount.
	MountFor func(node *cluster.Node) *pfs.Client
	// SetupClient is any mount, used for metadata during split planning.
	SetupClient *pfs.Client
}

// Name implements Backend.
func (b *LustreBackend) Name() string { return "lustre" }

// Put implements Backend.
func (b *LustreBackend) Put(path string, data []byte) { b.FS.Put(path, data) }

// Write implements Backend.
func (b *LustreBackend) Write(p *sim.Proc, node *cluster.Node, path string, data []byte) error {
	c := b.MountFor(node)
	if _, err := c.Create(p, path, 0, 0); err != nil {
		return err
	}
	return c.WriteAt(p, path, data, 0)
}

// Read implements Backend.
func (b *LustreBackend) Read(p *sim.Proc, node *cluster.Node, path string) ([]byte, error) {
	c := b.MountFor(node)
	size, err := c.Stat(p, path)
	if err != nil {
		return nil, err
	}
	return c.ReadAt(p, path, 0, size)
}

// Input implements Backend: splits are byte ranges with no locality (all
// data is remote).
func (b *LustreBackend) Input(paths []string, splitSize int64) mapreduce.InputFormat {
	return &lustreRangeInput{be: b, paths: paths, splitSize: splitSize}
}

type lustreRangeInput struct {
	be        *LustreBackend
	paths     []string
	splitSize int64
}

type lustreRange struct {
	path string
	off  int64
	n    int64
}

func (in *lustreRangeInput) Splits(p *sim.Proc) ([]*mapreduce.Split, error) {
	ss := in.splitSize
	if ss <= 0 {
		ss = 128 << 20
	}
	var out []*mapreduce.Split
	for _, path := range paths(in.paths) {
		size, err := in.be.SetupClient.Stat(p, path)
		if err != nil {
			return nil, err
		}
		for off := int64(0); off < size; off += ss {
			n := ss
			if off+n > size {
				n = size - off
			}
			out = append(out, &mapreduce.Split{
				Label:   fmt.Sprintf("%s@%d", path, off),
				Payload: lustreRange{path: path, off: off, n: n},
				Length:  n,
			})
		}
	}
	return out, nil
}

func (in *lustreRangeInput) ForEach(tc *mapreduce.TaskContext, s *mapreduce.Split, fn func(key string, value any) error) error {
	rg := s.Payload.(lustreRange)
	var data []byte
	var err error
	tc.Phase("Read", func() {
		data, err = in.be.MountFor(tc.Node()).ReadAt(tc.Proc(), rg.path, rg.off, rg.n)
	})
	if err != nil {
		return err
	}
	return fn(s.Label, data)
}

func paths(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

// ---- The three Figure 2 workloads.

// MiniConfig sizes a mini workload run.
type MiniConfig struct {
	// Files is the input/output file count.
	Files int
	// FileBytes is the size of each file.
	FileBytes int64
	// SplitSize carves inputs into map splits.
	SplitSize int64
	// TaskStartup is the per-task launch cost.
	TaskStartup float64
	// ScanPerMB charges map CPU per MB scanned (grep/terasort parse).
	ScanPerMB float64
}

// MiniResult reports one mini run.
type MiniResult struct {
	// Seconds is the job's virtual duration.
	Seconds float64
	// Bytes is the payload moved (for throughput reporting).
	Bytes int64
	// Output is workload-specific (match count, checksum).
	Output int64
}

// Throughput returns bytes/second.
func (r MiniResult) Throughput() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Seconds
}

// synthText builds deterministic text with the marker word scattered in.
func synthText(n int64, seed int, marker string) []byte {
	var buf bytes.Buffer
	buf.Grow(int(n))
	words := []string{"the", "rain", "falls", "on", "grid", "cells", "while", "model", "steps"}
	i := seed
	for int64(buf.Len()) < n {
		if i%37 == 0 {
			buf.WriteString(marker)
		} else {
			buf.WriteString(words[i%len(words)])
		}
		if i%12 == 11 {
			buf.WriteByte('\n')
		} else {
			buf.WriteByte(' ')
		}
		i++
	}
	return buf.Bytes()[:n]
}

// InstallTextInputs puts Files input text files on the backend and
// returns their paths.
func InstallTextInputs(be Backend, cfg MiniConfig, marker string) []string {
	var out []string
	for i := 0; i < cfg.Files; i++ {
		path := fmt.Sprintf("/mini/in/part-%04d", i)
		be.Put(path, synthText(cfg.FileBytes, i*131, marker))
		out = append(out, path)
	}
	return out
}

// RunTestDFSIOWrite measures aggregate write throughput: one map task per
// file, each writing FileBytes from its node.
func RunTestDFSIOWrite(p *sim.Proc, cl *cluster.Cluster, be Backend, cfg MiniConfig) (MiniResult, error) {
	splits := make([]*mapreduce.Split, cfg.Files)
	for i := range splits {
		splits[i] = &mapreduce.Split{Label: fmt.Sprintf("w%d", i), Payload: i, Length: cfg.FileBytes}
	}
	payload := bytes.Repeat([]byte{0xA5}, int(cfg.FileBytes))
	job := &mapreduce.Job{
		Name: "dfsio-write-" + be.Name(), Cluster: cl, TaskStartup: cfg.TaskStartup,
		Input: staticSplits(splits),
		Map: func(tc *mapreduce.TaskContext, key string, value any) error {
			i := value.(int)
			path := fmt.Sprintf("/mini/io-%s/out-%04d", be.Name(), i)
			var err error
			tc.Phase("Write", func() {
				err = be.Write(tc.Proc(), tc.Node(), path, payload)
			})
			return err
		},
	}
	res, err := job.Run(p)
	if err != nil {
		return MiniResult{}, err
	}
	return MiniResult{Seconds: res.Elapsed(), Bytes: int64(cfg.Files) * cfg.FileBytes}, nil
}

// RunTestDFSIORead measures aggregate read throughput over the files
// written by RunTestDFSIOWrite.
func RunTestDFSIORead(p *sim.Proc, cl *cluster.Cluster, be Backend, cfg MiniConfig) (MiniResult, error) {
	splits := make([]*mapreduce.Split, cfg.Files)
	for i := range splits {
		splits[i] = &mapreduce.Split{Label: fmt.Sprintf("r%d", i), Payload: i, Length: cfg.FileBytes}
	}
	var total int64
	job := &mapreduce.Job{
		Name: "dfsio-read-" + be.Name(), Cluster: cl, TaskStartup: cfg.TaskStartup,
		Input: staticSplits(splits),
		Map: func(tc *mapreduce.TaskContext, key string, value any) error {
			i := value.(int)
			path := fmt.Sprintf("/mini/io-%s/out-%04d", be.Name(), i)
			var data []byte
			var err error
			tc.Phase("Read", func() {
				data, err = be.Read(tc.Proc(), tc.Node(), path)
			})
			total += int64(len(data))
			return err
		},
	}
	res, err := job.Run(p)
	if err != nil {
		return MiniResult{}, err
	}
	return MiniResult{Seconds: res.Elapsed(), Bytes: total}, nil
}

// RunGrep counts marker occurrences across the input files.
func RunGrep(p *sim.Proc, cl *cluster.Cluster, be Backend, cfg MiniConfig, inputs []string, marker string) (MiniResult, error) {
	var total int64
	job := &mapreduce.Job{
		Name: "grep-" + be.Name(), Cluster: cl, TaskStartup: cfg.TaskStartup,
		Input: be.Input(inputs, cfg.SplitSize),
		Map: func(tc *mapreduce.TaskContext, key string, value any) error {
			data := value.([]byte)
			if cfg.ScanPerMB > 0 {
				tc.Charge("Scan", cfg.ScanPerMB*float64(len(data))/1e6)
			}
			// The real scan is pure byte work — run it on the data plane
			// (its modeled cost is the Charge above).
			var n int64
			tc.Compute(func() { n = int64(bytes.Count(data, []byte(marker))) })
			tc.Emit("count", n)
			return nil
		},
		Reduce: func(tc *mapreduce.TaskContext, key string, values []any) error {
			var sum int64
			for _, v := range values {
				sum += v.(int64)
			}
			total = sum
			tc.Emit(key, sum)
			return nil
		},
	}
	res, err := job.Run(p)
	if err != nil {
		return MiniResult{}, err
	}
	return MiniResult{Seconds: res.Elapsed(), Bytes: int64(cfg.Files) * cfg.FileBytes, Output: total}, nil
}

// RunTeraSort sorts fixed-width records by 10-byte key: map emits every
// record (the full payload crosses the shuffle), reducers write sorted
// runs back to the backend.
func RunTeraSort(p *sim.Proc, cl *cluster.Cluster, be Backend, cfg MiniConfig, inputs []string, reducers int) (MiniResult, error) {
	const rec = 100
	var outBytes int64
	job := &mapreduce.Job{
		Name: "terasort-" + be.Name(), Cluster: cl, TaskStartup: cfg.TaskStartup,
		Input:       be.Input(inputs, cfg.SplitSize),
		NumReducers: reducers,
		PairBytes:   func(kv mapreduce.KV) int64 { return rec },
		Partition: func(key string, n int) int {
			if len(key) == 0 {
				return 0
			}
			return int(key[0]) * n / 256
		},
		Map: func(tc *mapreduce.TaskContext, key string, value any) error {
			data := value.([]byte)
			if cfg.ScanPerMB > 0 {
				tc.Charge("Scan", cfg.ScanPerMB*float64(len(data))/1e6)
			}
			// Record extraction (key slicing + emit into the partition
			// buckets) is pure byte work: offload it whole.
			tc.Compute(func() {
				for off := 0; off+rec <= len(data); off += rec {
					tc.Emit(string(data[off:off+10]), data[off:off+rec])
				}
			})
			return nil
		},
		Reduce: func(tc *mapreduce.TaskContext, key string, values []any) error {
			for range values {
				outBytes += rec
			}
			tc.Emit(key, len(values))
			return nil
		},
	}
	res, err := job.Run(p)
	if err != nil {
		return MiniResult{}, err
	}
	// Reducers write their sorted runs back.
	wg := p.Kernel().NewWaitGroup()
	perRed := outBytes / int64(reducers)
	for r := 0; r < reducers; r++ {
		r := r
		wg.Add(1)
		node := cl.Nodes[r%len(cl.Nodes)]
		p.Kernel().Go(fmt.Sprintf("terasort-out-%d", r), func(wp *sim.Proc) {
			defer wg.Done()
			be.Write(wp, node, fmt.Sprintf("/mini/sorted-%s/part-%05d", be.Name(), r), make([]byte, perRed))
		})
	}
	p.Wait(wg)
	return MiniResult{Seconds: p.Now() - res.Start, Bytes: int64(cfg.Files) * cfg.FileBytes, Output: outBytes}, nil
}

// staticSplits adapts a fixed split list into an InputFormat whose
// ForEach just hands the payload through.
type staticSplits []*mapreduce.Split

func (s staticSplits) Splits(p *sim.Proc) ([]*mapreduce.Split, error) { return s, nil }

func (s staticSplits) ForEach(tc *mapreduce.TaskContext, sp *mapreduce.Split, fn func(key string, value any) error) error {
	return fn(sp.Label, sp.Payload)
}

// Package workloads provides the paper's inputs: a synthetic NU-WRF
// output generator (the paper itself extended 48 real timestamps to
// 96-768 with a synthetic generator following the same dimensions,
// chunking, and compression ratio — this is that generator one scale
// further down), the Img-only and Anlys workload definitions of Table II,
// and the TeraSort/Grep/TestDFSIO minis behind Figure 2.
package workloads

import (
	"fmt"
	"math"
	"sort"

	"scidp/internal/netcdf"
	"scidp/internal/pfs"
)

// NUWRFVars is the paper's variable count: "NU-WRF uses 23 single-
// precision floating-point variables in the simulation".
const NUWRFVars = 23

// NUWRFSpec sizes a synthetic NU-WRF run. The paper's low-resolution grid
// is 50x1250x1250 per timestamp; benchmarks here scale the grid down and
// scale bandwidths by the same factor (see the bench package).
type NUWRFSpec struct {
	// Timestamps is the number of output files (one per simulated hour).
	Timestamps int
	// Levels, Lat, Lon are the per-variable grid dimensions.
	Levels, Lat, Lon int
	// Vars is the variable count (default NUWRFVars).
	Vars int
	// Deflate is the netCDF-4 style compression level (default 1).
	Deflate int
	// Dir is the PFS directory files are written under.
	Dir string
	// Seed perturbs the synthetic fields.
	Seed int64
}

// withDefaults normalizes the spec.
func (s NUWRFSpec) withDefaults() NUWRFSpec {
	if s.Vars == 0 {
		s.Vars = NUWRFVars
	}
	if s.Deflate == 0 {
		s.Deflate = 1
	}
	if s.Dir == "" {
		s.Dir = "/nuwrf"
	}
	return s
}

// VarName returns the i-th variable name; index 0 is QR (rainfall), the
// variable the paper analyzes.
func VarName(i int) string {
	if i == 0 {
		return "QR"
	}
	return fmt.Sprintf("VAR%02d", i)
}

// FileName returns the output file name for a timestamp, following the
// paper's plot_HH_MM_SS pattern.
func FileName(t int) string {
	return fmt.Sprintf("plot_%02d_%02d_00.nc", t/60, t%60)
}

// TimestampIndex recovers the timestamp from a generated file path (or
// any path containing the plot_HH_MM prefix); -1 if it does not parse.
func TimestampIndex(p string) int {
	base := p
	if i := lastSlash(p); i >= 0 {
		base = p[i+1:]
	}
	var hh, mm int
	if _, err := fmt.Sscanf(base, "plot_%02d_%02d", &hh, &mm); err != nil {
		return -1
	}
	return hh*60 + mm
}

func lastSlash(p string) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return i
		}
	}
	return -1
}

// Dataset describes a generated run.
type Dataset struct {
	// Spec is the generating spec (defaults filled).
	Spec NUWRFSpec
	// Files are the PFS paths in timestamp order.
	Files []string
	// VarRawBytes is the uncompressed bytes of one variable.
	VarRawBytes int64
	// VarStoredBytes is the average on-disk bytes of one variable.
	VarStoredBytes int64
	// FileBytes is the average netCDF file size.
	FileBytes int64
	// TotalBytes is the dataset's total on-disk size.
	TotalBytes int64
}

// CompressionRatio reports raw/stored for one variable.
func (d *Dataset) CompressionRatio() float64 {
	return float64(d.VarRawBytes) / float64(d.VarStoredBytes)
}

// GenerateBlobs builds the dataset's files as in-memory netCDF blobs,
// keyed by PFS path. Blobs are deterministic in the spec, so benchmark
// sweeps can generate once and install into many fresh PFS instances.
func GenerateBlobs(spec NUWRFSpec) (map[string][]byte, *Dataset, error) {
	spec = spec.withDefaults()
	if spec.Timestamps <= 0 || spec.Levels <= 0 || spec.Lat <= 0 || spec.Lon <= 0 {
		return nil, nil, fmt.Errorf("workloads: invalid NU-WRF spec %+v", spec)
	}
	ds := &Dataset{Spec: spec}
	blobs := make(map[string][]byte, spec.Timestamps)
	cells := spec.Levels * spec.Lat * spec.Lon
	vals := make([]float32, cells)
	for t := 0; t < spec.Timestamps; t++ {
		w := netcdf.NewWriter()
		w.AddDim("level", spec.Levels)
		w.AddDim("lat", spec.Lat)
		w.AddDim("lon", spec.Lon)
		w.GlobalAttr(netcdf.StringAttr("model", "NU-WRF"))
		w.GlobalAttr(netcdf.Int64Attr("timestamp", int64(t)))
		for v := 0; v < spec.Vars; v++ {
			name := VarName(v)
			if err := w.AddVar(name, netcdf.Float32, []string{"level", "lat", "lon"},
				netcdf.Chunking{Shape: []int{1, spec.Lat, spec.Lon}, Deflate: spec.Deflate},
				netcdf.StringAttr("units", "kg/kg")); err != nil {
				return nil, nil, err
			}
			fillField(vals, spec, t, v)
			if err := w.PutVarFloat32(name, vals); err != nil {
				return nil, nil, err
			}
		}
		blob, err := w.Bytes()
		if err != nil {
			return nil, nil, err
		}
		path := spec.Dir + "/" + FileName(t)
		blobs[path] = blob
		ds.Files = append(ds.Files, path)
		ds.TotalBytes += int64(len(blob))
		if t == 0 {
			f, err := netcdf.Open(netcdf.BytesReader(blob))
			if err != nil {
				return nil, nil, err
			}
			qr, err := f.Var("QR")
			if err != nil {
				return nil, nil, err
			}
			ds.VarRawBytes = qr.RawBytes()
			ds.VarStoredBytes = qr.StoredBytes()
			ds.FileBytes = int64(len(blob))
		}
	}
	return blobs, ds, nil
}

// Generate builds the dataset and installs it on the PFS (no virtual time
// charged — the files "already exist" when analysis begins, as in the
// paper's workflow).
func Generate(fs *pfs.FS, spec NUWRFSpec) (*Dataset, error) {
	blobs, ds, err := GenerateBlobs(spec)
	if err != nil {
		return nil, err
	}
	Install(fs, blobs)
	return ds, nil
}

// Install puts pre-generated blobs onto a PFS, in sorted path order so
// the round-robin stripe placement (and every timing derived from it)
// is identical across runs.
func Install(fs *pfs.FS, blobs map[string][]byte) {
	paths := make([]string, 0, len(blobs))
	for path := range blobs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		fs.Put(path, blobs[path])
	}
}

// fillField synthesizes one variable's grid for a timestamp: a drifting
// smooth weather-front pattern, quantized to three decimals so DEFLATE
// reaches a netCDF-4-like compression ratio (~3x, the paper's 298 MB ->
// 91 MB per variable).
func fillField(out []float32, spec NUWRFSpec, t, v int) {
	phase := float64(t)*0.21 + float64(v)*1.7 + float64(spec.Seed)*0.013
	i := 0
	for l := 0; l < spec.Levels; l++ {
		lw := 1.0 - float64(l)/float64(spec.Levels+1)
		for y := 0; y < spec.Lat; y++ {
			fy := float64(y) / float64(spec.Lat)
			sy := math.Sin(fy*6.0 + phase)
			for x := 0; x < spec.Lon; x++ {
				fx := float64(x) / float64(spec.Lon)
				val := lw * (sy*math.Cos(fx*5.0-phase*0.7) + 0.3*math.Sin((fx+fy)*11.0))
				if val < 0 {
					val = 0 // rainfall-like: sparse non-negative field
				}
				// Quantize for realistic compressibility.
				out[i] = float32(math.Round(val*1000) / 1000)
				i++
			}
		}
	}
}

// WorkloadKind enumerates Table II's workloads.
type WorkloadKind int

// Table II rows.
const (
	// ImgOnly plots one image per level per timestamp ("includes only
	// the image plotting phase which can be fully parallelized").
	ImgOnly WorkloadKind = iota
	// Anlys adds animation aggregation and SQL/statistical analysis.
	Anlys
)

// String names the workload as in Table II.
func (w WorkloadKind) String() string {
	switch w {
	case ImgOnly:
		return "Img-only"
	case Anlys:
		return "Anlys"
	}
	return "unknown"
}

// Phases reports Table II's matrix row: image plotting, animation,
// analysis.
func (w WorkloadKind) Phases() (plotting, animation, analysis bool) {
	switch w {
	case ImgOnly:
		return true, false, false
	case Anlys:
		return true, true, true
	}
	return false, false, false
}

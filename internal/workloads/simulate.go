package workloads

import (
	"fmt"

	"scidp/internal/cluster"
	"scidp/internal/mpiio"
	"scidp/internal/pfs"
	"scidp/internal/sim"
)

// SimSpec drives SimulateRun: the HPC simulation phase of the paper's
// workflow (Section II-A) played in virtual time — ranks compute for a
// while, then collectively write one timestamp's netCDF output to the
// PFS, repeating for every timestamp.
type SimSpec struct {
	// Comm is the MPI communicator the simulation runs on.
	Comm *mpiio.Comm
	// FS is the PFS outputs land on.
	FS *pfs.FS
	// Blobs are the pre-generated file contents, keyed by PFS path.
	Blobs map[string][]byte
	// Files are the output paths in timestamp order.
	Files []string
	// ComputeSeconds is the simulated compute time per timestep.
	ComputeSeconds float64
	// OnFile, when set, fires (in virtual time, from the driver) right
	// after each file completes — the hook in-situ analysis attaches to.
	OnFile func(p *sim.Proc, path string, index int)
}

// SimulateRun plays the simulation from the driver process, blocking in
// virtual time until the last output file is on the PFS.
func SimulateRun(p *sim.Proc, spec SimSpec) error {
	if spec.Comm == nil || spec.FS == nil {
		return fmt.Errorf("workloads: SimulateRun needs a communicator and a PFS")
	}
	n := spec.Comm.Size()
	for i, file := range spec.Files {
		blob, ok := spec.Blobs[file]
		if !ok {
			return fmt.Errorf("workloads: no blob for %s", file)
		}
		// Compute phase: ranks advance the model in lockstep.
		if spec.ComputeSeconds > 0 {
			p.Sleep(spec.ComputeSeconds)
		}
		// I/O phase: collective write of the timestep's file.
		if _, err := spec.Comm.Ranks()[0].Client.Create(p, file, 0, 0); err != nil {
			return err
		}
		reqs := mpiio.ContiguousSplit(int64(len(blob)), n)
		data := make([][]byte, n)
		for r := range data {
			data[r] = blob[reqs[r].Off : reqs[r].Off+reqs[r].Len]
		}
		res := spec.Comm.CollectiveWrite(file, reqs, data, minI(n, 8))
		res.Await(p)
		if res.Err != nil {
			return res.Err
		}
		if spec.OnFile != nil {
			spec.OnFile(p, file, i)
		}
	}
	return nil
}

// NewComm builds a communicator with one rank per node of cl, each
// mounting fs through its own NIC plus the given extra path.
func NewComm(k *sim.Kernel, cl *cluster.Cluster, fs *pfs.FS, extra ...*sim.Resource) *mpiio.Comm {
	ranks := make([]mpiio.Rank, len(cl.Nodes))
	for i, n := range cl.Nodes {
		path := append(append([]*sim.Resource(nil), extra...), n.NIC)
		ranks[i] = mpiio.Rank{Node: n, Client: fs.NewClient(path...)}
	}
	return mpiio.NewComm(k, cl, ranks)
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

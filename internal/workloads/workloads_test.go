package workloads

import (
	"testing"

	"scidp/internal/cluster"
	"scidp/internal/hdfs"
	"scidp/internal/netcdf"
	"scidp/internal/pfs"
	"scidp/internal/sim"
)

func tinySpec() NUWRFSpec {
	return NUWRFSpec{Timestamps: 3, Levels: 4, Lat: 16, Lon: 16, Vars: 5, Dir: "/nuwrf"}
}

func TestGenerateBlobsShape(t *testing.T) {
	blobs, ds, err := GenerateBlobs(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 3 || len(ds.Files) != 3 {
		t.Fatalf("files = %d", len(blobs))
	}
	if ds.Files[0] != "/nuwrf/plot_00_00_00.nc" {
		t.Fatalf("first file = %s", ds.Files[0])
	}
	if ds.VarRawBytes != 4*16*16*4 {
		t.Fatalf("VarRawBytes = %d", ds.VarRawBytes)
	}
	// Every blob parses and carries the requested variables.
	f, err := netcdf.Open(netcdf.BytesReader(blobs[ds.Files[2]]))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Vars()) != 5 {
		t.Fatalf("vars = %d", len(f.Vars()))
	}
	if _, err := f.Var("QR"); err != nil {
		t.Fatal("missing QR")
	}
	if len(f.Vars()[0].Chunks) != 4 {
		t.Fatalf("chunks per var = %d, want one per level", len(f.Vars()[0].Chunks))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, err := GenerateBlobs(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	b, _, _ := GenerateBlobs(tinySpec())
	for path := range a {
		if string(a[path]) != string(b[path]) {
			t.Fatalf("blob %s differs between runs", path)
		}
	}
}

func TestCompressionRatioRealistic(t *testing.T) {
	spec := tinySpec()
	spec.Lat, spec.Lon, spec.Levels = 48, 48, 10
	_, ds, err := GenerateBlobs(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := ds.CompressionRatio()
	if r < 1.8 || r > 12 {
		t.Fatalf("compression ratio %v outside netCDF-4-like band [1.8, 12]", r)
	}
}

func TestGenerateInstallsOnPFS(t *testing.T) {
	k := sim.NewKernel()
	fs := pfs.New(k, pfs.DefaultConfig())
	ds, err := Generate(fs, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range ds.Files {
		if fs.Get(f) == nil {
			t.Fatalf("missing %s on PFS", f)
		}
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	if _, _, err := GenerateBlobs(NUWRFSpec{}); err == nil {
		t.Fatal("empty spec should fail")
	}
}

func TestWorkloadKinds(t *testing.T) {
	p, a, an := ImgOnly.Phases()
	if !p || a || an {
		t.Fatal("Img-only phases wrong")
	}
	p, a, an = Anlys.Phases()
	if !p || !a || !an {
		t.Fatal("Anlys phases wrong")
	}
	if ImgOnly.String() != "Img-only" || Anlys.String() != "Anlys" {
		t.Fatal("names wrong")
	}
}

func TestVarAndFileNames(t *testing.T) {
	if VarName(0) != "QR" || VarName(3) != "VAR03" {
		t.Fatal("VarName wrong")
	}
	if FileName(61) != "plot_01_01_00.nc" {
		t.Fatalf("FileName = %s", FileName(61))
	}
}

// miniRig builds both backends over the same virtual hardware shape.
type miniRig struct {
	k  *sim.Kernel
	cl *cluster.Cluster
	h  *HDFSBackend
	l  *LustreBackend
}

func newMiniRig(t *testing.T) *miniRig {
	t.Helper()
	k := sim.NewKernel()
	cl := cluster.New(k, "bd", cluster.Config{
		Nodes: 4, SlotsPerNode: 2,
		DiskBW: 1e6, NICBW: 5e5, FabricBW: 2e6,
	})
	hfs := hdfs.New(k, cl, hdfs.Config{BlockSize: 8192, Replication: 1, NNOpsPerSec: 1e9})
	pcfg := pfs.DefaultConfig()
	pcfg.OSSCount, pcfg.OSTsPerOSS = 2, 4
	pcfg.OSTBW = 5e5
	pcfg.OSSNICBW = 2e6
	pcfg.FabricBW = 2e6
	pcfg.DefaultStripeSize = 4096
	pfsFS := pfs.New(k, pcfg)
	mount := func(n *cluster.Node) *pfs.Client { return pfsFS.NewClient(n.NIC) }
	return &miniRig{
		k:  k,
		cl: cl,
		h:  &HDFSBackend{FS: hfs},
		l:  &LustreBackend{FS: pfsFS, MountFor: mount, SetupClient: pfsFS.NewClient()},
	}
}

func TestGrepCountsMatchAcrossBackends(t *testing.T) {
	r := newMiniRig(t)
	cfg := MiniConfig{Files: 4, FileBytes: 8192, SplitSize: 8192, TaskStartup: 0.1}
	hin := InstallTextInputs(r.h, cfg, "needle")
	var hres, lres MiniResult
	r.k.Go("driver", func(p *sim.Proc) {
		var err error
		hres, err = RunGrep(p, r.cl, r.h, cfg, hin, "needle")
		if err != nil {
			t.Error(err)
		}
	})
	r.k.Run()

	r2 := newMiniRig(t)
	lin := InstallTextInputs(r2.l, cfg, "needle")
	r2.k.Go("driver", func(p *sim.Proc) {
		var err error
		lres, err = RunGrep(p, r2.cl, r2.l, cfg, lin, "needle")
		if err != nil {
			t.Error(err)
		}
	})
	r2.k.Run()
	if hres.Output == 0 || hres.Output != lres.Output {
		t.Fatalf("grep counts differ: hdfs=%d lustre=%d", hres.Output, lres.Output)
	}
	if hres.Seconds >= lres.Seconds {
		t.Fatalf("native HDFS grep (%v) should beat the connector (%v)", hres.Seconds, lres.Seconds)
	}
}

func TestDFSIOWriteThenRead(t *testing.T) {
	r := newMiniRig(t)
	cfg := MiniConfig{Files: 4, FileBytes: 4096, TaskStartup: 0.1}
	r.k.Go("driver", func(p *sim.Proc) {
		w, err := RunTestDFSIOWrite(p, r.cl, r.h, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if w.Bytes != 4*4096 || w.Seconds <= 0 {
			t.Errorf("write result = %+v", w)
		}
		rd, err := RunTestDFSIORead(p, r.cl, r.h, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if rd.Bytes != 4*4096 {
			t.Errorf("read bytes = %d", rd.Bytes)
		}
		if rd.Throughput() <= 0 {
			t.Error("throughput should be positive")
		}
	})
	r.k.Run()
}

func TestTeraSortConservesRecords(t *testing.T) {
	r := newMiniRig(t)
	cfg := MiniConfig{Files: 2, FileBytes: 10000, SplitSize: 10000, TaskStartup: 0.1}
	in := InstallTextInputs(r.h, cfg, "key")
	r.k.Go("driver", func(p *sim.Proc) {
		res, err := RunTeraSort(p, r.cl, r.h, cfg, in, 2)
		if err != nil {
			t.Error(err)
			return
		}
		// Records that straddle the 8192-byte block boundary are dropped
		// by the mini (it does not re-align records across splits):
		// floor(8192/100) + floor(1808/100) = 99 records per file.
		wantRecords := int64(2 * 99 * 100)
		if res.Output != wantRecords {
			t.Errorf("sorted bytes = %d, want %d", res.Output, wantRecords)
		}
	})
	r.k.Run()
}

func TestHDFSInputSplitsCarryLocality(t *testing.T) {
	r := newMiniRig(t)
	cfg := MiniConfig{Files: 2, FileBytes: 20000, SplitSize: 8192, TaskStartup: 0.1}
	in := InstallTextInputs(r.h, cfg, "x")
	r.k.Go("driver", func(p *sim.Proc) {
		splits, err := r.h.Input(in, cfg.SplitSize).Splits(p)
		if err != nil {
			t.Error(err)
			return
		}
		if len(splits) != 6 { // 2 files x ceil(20000/8192)=3 blocks
			t.Errorf("splits = %d, want 6", len(splits))
		}
		for _, s := range splits {
			if len(s.Locations) == 0 {
				t.Error("HDFS split missing locality hint")
			}
		}
	})
	r.k.Run()
}

func TestLustreInputSplitsHaveNoLocality(t *testing.T) {
	r := newMiniRig(t)
	cfg := MiniConfig{Files: 1, FileBytes: 20000, SplitSize: 8192, TaskStartup: 0.1}
	in := InstallTextInputs(r.l, cfg, "x")
	r.k.Go("driver", func(p *sim.Proc) {
		splits, err := r.l.Input(in, cfg.SplitSize).Splits(p)
		if err != nil {
			t.Error(err)
			return
		}
		if len(splits) != 3 {
			t.Errorf("splits = %d, want 3", len(splits))
		}
		for _, s := range splits {
			if len(s.Locations) != 0 {
				t.Error("connector split should have no locality")
			}
		}
	})
	r.k.Run()
}

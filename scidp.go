// Package scidp is a from-scratch Go reproduction of SciDP ("SciDP:
// Support HPC and Big Data Applications via Integrated Scientific Data
// Processing", Feng, Sun, Yang, Zhou — IEEE CLUSTER 2018): a runtime that
// lets a Hadoop-style big-data engine process scientific data (netCDF /
// HDF5) in place on an HPC parallel file system — no copy to HDFS, no
// text conversion — through three components:
//
//   - a File Explorer that classifies PFS inputs (scientific vs. flat),
//   - a Data Mapper that mirrors scientific files as virtual HDFS inodes
//     whose dummy blocks map to PFS file segments / variable hyperslabs,
//   - a PFS Reader that each map task spawns to pull its block's bytes
//     straight from the PFS.
//
// Because the paper's environment (Lustre, HDFS, Hadoop, the netCDF C
// library, R) has no Go equivalent, every substrate is implemented here
// from scratch and runs under a deterministic discrete-event simulation
// for timing: see DESIGN.md for the system inventory and EXPERIMENTS.md
// for the paper-versus-measured record.
//
// This package is the public façade: it re-exports the stable pieces of
// the internal packages via type aliases and offers a one-call testbed
// builder. Direct use of the internal packages from this repository's
// commands, examples, and benchmarks shows the full surface.
package scidp

import (
	"scidp/internal/cluster"
	"scidp/internal/core"
	"scidp/internal/hdfs"
	"scidp/internal/mapreduce"
	"scidp/internal/netcdf"
	"scidp/internal/pfs"
	"scidp/internal/rframe"
	"scidp/internal/rsql"
	"scidp/internal/scifmt"
	"scidp/internal/sim"
	"scidp/internal/solutions"
	"scidp/internal/workloads"
)

// Core SciDP components (the paper's contribution).
type (
	// Explorer is the File Explorer (Path Reader + Sci-format Head
	// Reader).
	Explorer = core.Explorer
	// Mapper is the Data Mapper building virtual HDFS mirrors.
	Mapper = core.Mapper
	// MapOptions tunes mapping (variable subsetting, block granularity).
	MapOptions = core.MapOptions
	// Mapping is a built virtual mirror.
	Mapping = core.Mapping
	// PFSReader resolves dummy blocks inside tasks.
	PFSReader = core.PFSReader
	// InputFormat plugs SciDP into the MapReduce engine.
	InputFormat = core.InputFormat
	// Slab is a decoded variable hyperslab.
	Slab = core.Slab
	// SlabSource is a scientific dummy block's mapping payload.
	SlabSource = core.SlabSource
	// FlatSource is a flat dummy block's mapping payload.
	FlatSource = core.FlatSource
)

// Substrates.
type (
	// Kernel is the deterministic discrete-event simulation engine.
	Kernel = sim.Kernel
	// Proc is a simulated process.
	Proc = sim.Proc
	// Cluster is a set of simulated machines.
	Cluster = cluster.Cluster
	// Node is one simulated machine.
	Node = cluster.Node
	// PFS is the Lustre-like parallel file system.
	PFS = pfs.FS
	// PFSClient is a PFS mount point.
	PFSClient = pfs.Client
	// HDFS is the Hadoop distributed file system substrate.
	HDFS = hdfs.FS
	// Job is a MapReduce job.
	Job = mapreduce.Job
	// TaskContext is handed to map/reduce functions.
	TaskContext = mapreduce.TaskContext
	// NetCDFWriter builds files in the netCDF-like format.
	NetCDFWriter = netcdf.Writer
	// NetCDFFile is an opened netCDF-like file.
	NetCDFFile = netcdf.File
	// Frame is an R-style data frame.
	Frame = rframe.Frame
	// FormatRegistry holds scientific-format plugins.
	FormatRegistry = scifmt.Registry
)

// Testbed construction and the paper's pipelines.
type (
	// Env is the two-cluster testbed (PFS + HDFS + interlink).
	Env = solutions.Env
	// EnvConfig sizes a testbed.
	EnvConfig = solutions.EnvConfig
	// Workload is a dataset + analyzed variable + analysis kind.
	Workload = solutions.Workload
	// Report is one solution run's outcome.
	Report = solutions.Report
	// NUWRFSpec sizes a synthetic NU-WRF run.
	NUWRFSpec = workloads.NUWRFSpec
	// Dataset describes a generated run.
	Dataset = workloads.Dataset
)

// NewKernel returns a fresh simulation kernel.
func NewKernel() *Kernel { return sim.NewKernel() }

// NewTestbed builds the paper's two-cluster testbed at the given scale
// factors (see solutions.DefaultEnvConfig).
func NewTestbed(byteScale, levelScale float64) *Env {
	return solutions.NewEnv(solutions.DefaultEnvConfig(byteScale, levelScale))
}

// DefaultFormats returns a registry with the built-in netCDF and HDF5
// format plugins.
func DefaultFormats() *FormatRegistry { return scifmt.Default() }

// NewMapper returns a Data Mapper writing mirrors under mirrorRoot.
func NewMapper(fs *HDFS, reg *FormatRegistry, mirrorRoot string) *Mapper {
	return core.NewMapper(fs, reg, mirrorRoot)
}

// GenerateNUWRF synthesizes a NU-WRF run onto the PFS.
func GenerateNUWRF(fs *PFS, spec NUWRFSpec) (*Dataset, error) {
	return workloads.Generate(fs, spec)
}

// RunSciDP executes the SciDP pipeline (map, read in place, plot,
// analyze) on a testbed from a driver process.
func RunSciDP(p *Proc, env *Env, wl *Workload) (*Report, error) {
	return solutions.RunSciDP(p, env, wl)
}

// NewFrame returns an empty R-style data frame.
func NewFrame() *Frame { return rframe.New() }

// ReadTable parses CSV text with a header row into a data frame
// (read.table).
func ReadTable(text []byte) (*Frame, error) { return rframe.ReadTable(text) }

// Query runs sqldf-style SQL over named data frames.
func Query(tables map[string]*Frame, sql string) (*Frame, error) {
	return rsql.Query(tables, sql)
}

package scidp_test

import (
	"testing"

	"scidp"
)

// TestFacadeEndToEnd drives the whole public API surface once: build a
// testbed, generate a dataset, run the SciDP pipeline, query a frame.
func TestFacadeEndToEnd(t *testing.T) {
	env := scidp.NewTestbed(1000, 10)
	ds, err := scidp.GenerateNUWRF(env.PFS, scidp.NUWRFSpec{
		Timestamps: 2, Levels: 5, Lat: 16, Lon: 16, Vars: 4, Dir: "/nuwrf",
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep *scidp.Report
	env.K.Go("driver", func(p *scidp.Proc) {
		rep, err = scidp.RunSciDP(p, env, &scidp.Workload{Dataset: ds, Var: "QR"})
	})
	env.K.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Images != 2*5 {
		t.Fatalf("images = %d, want 10", rep.Images)
	}
	if rep.TotalSeconds <= 0 {
		t.Fatal("total must be positive")
	}
}

func TestFacadeMapperAndSQL(t *testing.T) {
	env := scidp.NewTestbed(1000, 10)
	if _, err := scidp.GenerateNUWRF(env.PFS, scidp.NUWRFSpec{
		Timestamps: 1, Levels: 2, Lat: 8, Lon: 8, Vars: 2, Dir: "/d",
	}); err != nil {
		t.Fatal(err)
	}
	var mapping *scidp.Mapping
	env.K.Go("driver", func(p *scidp.Proc) {
		m := scidp.NewMapper(env.HDFS, scidp.DefaultFormats(), "/mirror")
		var err error
		mapping, err = m.MapPath(p, env.Mount(env.BD.Node(0)), "/d", scidp.MapOptions{Vars: []string{"QR"}})
		if err != nil {
			t.Error(err)
		}
	})
	env.K.Run()
	if mapping == nil || len(mapping.VirtualPaths()) != 1 {
		t.Fatalf("mapping = %+v", mapping)
	}

	df, err := scidp.ReadTable([]byte("x\n1\n2\n3\n"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := scidp.Query(map[string]*scidp.Frame{"t": df}, "SELECT SUM(x) AS s FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if out.Col("s").F[0] != 6 {
		t.Fatalf("sum = %v", out.Col("s").F[0])
	}

	f2 := scidp.NewFrame()
	if err := f2.AddFloat("v", []float64{4, 5}); err != nil {
		t.Fatal(err)
	}
	if f2.NumRows() != 2 {
		t.Fatalf("rows = %d", f2.NumRows())
	}
}
